"""Election-mode mapping: every host maps, a leader emerges (Figure 7).

"Another [mode] where all interfaces or hosts actively map the network and
in the process the participants elect a leader by comparing network
interface addresses carried in every message. The master/slave mode is
faster but introduces a single point of failure, whereas the election mode
is more robust ... but has a performance cost." (Section 4.2)

Protocol model
--------------
- Every daemon starts actively mapping within a small random spread.
- Every probe carries its sender's interface address. A host that receives
  a probe from a higher-address active mapper yields: it stops mapping and
  becomes a passive responder.
- While a daemon is *actively mapping* it does not answer host-probes (its
  interface is busy driving its own exploration); passive and finished
  daemons answer normally.
- The highest-address mapper never yields; the run ends when it completes.

Why this is slower than master/slave, and why the variance grows with the
network: the winner's early host-probes to still-active rivals time out
instead of answering. Every such miss is a lost *host anchor* — exactly the
resource the merging deductions feed on (Lemma 3 anchors at hosts) — so
replicates merge later and the winner explores and probes more. Which
anchors are lost depends on start-time jitter, hence the long tail the
paper reports for C+A+B election mode (981/1011/1208 master vs
1065/1298/3332 election).

Approximation (recorded in DESIGN.md): rival mappers replay quiescent probe
schedules (capped — rivals yield early) to decide *when rivals silence each
other*; the winner's mapper runs live against a time-aware probe service,
so its probe content genuinely adapts to which hosts were silent.
"""

from __future__ import annotations

import bisect
import random
import statistics
from dataclasses import dataclass

from repro.core.mapper import BerkeleyMapper, MapResult
from repro.simulator.collision import CircuitModel, CollisionModel
from repro.simulator.path_eval import IncrementalPathEvaluator
from repro.simulator.probes import ProbeKind, ProbeRecord, ProbeStats
from repro.simulator.quiescent import QuiescentProbeService
from repro.simulator.timing import MYRINET_TIMING, TimingModel
from repro.simulator.turns import Turns, switch_probe_turns, validate_turns
from repro.topology.model import Network

__all__ = ["ElectionOutcome", "election_run", "election_times"]


@dataclass(slots=True)
class ElectionOutcome:
    """Result of one election-mode mapping simulation."""

    winner: str
    elapsed_ms: float
    map_result: MapResult
    yield_times_ms: dict[str, float]
    anchor_misses: int

    @property
    def hosts_mapped(self) -> int:
        return self.map_result.network.n_hosts


def _rival_schedule(
    net: Network,
    host: str,
    *,
    search_depth: int,
    collision: CollisionModel,
    timing: TimingModel,
    cap: int,
) -> list[tuple[float, str]]:
    """(relative time, delivered-to host) for a rival's host-probe hits.

    The rival's probe sequence is its quiescent schedule; only delivered
    host-probes matter to the election (they carry the address comparison).
    """

    class _Stop(Exception):
        pass

    svc = QuiescentProbeService(
        net, host, collision=collision, timing=timing, keep_trace=True
    )

    class _Capped:
        @property
        def mapper_host(self) -> str:
            return svc.mapper_host

        @property
        def stats(self) -> ProbeStats:
            return svc.stats

        def probe_host(self, turns):
            self._check()
            return svc.probe_host(turns)

        def probe_switch(self, turns):
            self._check()
            return svc.probe_switch(turns)

        @staticmethod
        def _check() -> None:
            if svc.stats.total_probes >= cap:
                raise _Stop()

    try:
        BerkeleyMapper(_Capped(), search_depth=search_depth, host_first=False).run()
    except _Stop:
        pass
    events: list[tuple[float, str]] = []
    clock = 0.0
    assert svc.stats.trace is not None
    for rec in svc.stats.trace:
        clock += rec.cost_us
        if rec.kind is ProbeKind.HOST and rec.hit and rec.response is not None:
            events.append((clock, rec.response))
    return events


class _ElectionProbeService:
    """Time-aware probe service for the winner's live mapping run.

    Maintains the election state: rival activity windows, the merged rival
    probe-delivery timeline, and the rule that active mappers do not answer
    host-probes. Anchors the winner's clock to ``stats.elapsed_us``.
    """

    def __init__(
        self,
        net: Network,
        winner: str,
        *,
        collision: CollisionModel,
        timing: TimingModel,
        start_us: dict[str, float],
        rival_events: list[tuple[float, str, str]],  # (abs time, sender, target)
        rival_end_us: dict[str, float],
        jitter: float,
        rng: random.Random,
    ) -> None:
        self._inner = QuiescentProbeService(
            net, winner, collision=collision, timing=timing
        )
        # Own trie: probe addresses here arrive in the same extension order
        # as the quiescent case, and elections have no fault model to track.
        self._evaluator = IncrementalPathEvaluator(net)
        self._net = net
        self._winner = winner
        self._timing = timing
        self._start = start_us
        self._events = sorted(rival_events)
        self._cursor = 0
        self._trace_end = rival_end_us
        self._yielded: dict[str, float] = {}
        self._jitter = jitter
        self._rng = rng
        self.anchor_misses = 0

    # -- ProbeService ----------------------------------------------------
    @property
    def mapper_host(self) -> str:
        return self._winner

    @property
    def stats(self) -> ProbeStats:
        return self._inner.stats

    @property
    def now_us(self) -> float:
        return self._start[self._winner] + self._inner.stats.elapsed_us

    def yield_times(self) -> dict[str, float]:
        return dict(self._yielded)

    def _is_active(self, host: str, at_us: float) -> bool:
        """Is ``host`` actively mapping (and therefore silent) at ``at_us``?"""
        if host == self._winner:
            return True
        start = self._start.get(host)
        if start is None or at_us < start:
            return False
        if host in self._yielded and at_us >= self._yielded[host]:
            return False
        if at_us >= start + self._trace_end.get(host, 0.0):
            return False  # finished its own map; daemon back to passive
        return True

    def _advance_rivals(self, to_us: float) -> None:
        """Apply rival-to-rival silencing events up to ``to_us``."""
        while self._cursor < len(self._events) and self._events[self._cursor][0] <= to_us:
            t, sender, target = self._events[self._cursor]
            self._cursor += 1
            if sender == target or target == self._winner:
                continue
            if not self._is_active(sender, t):
                continue
            # An active target does not reply, but it does *hear* the probe.
            if sender > target and self._is_active(target, t):
                self._yielded[target] = t

    def probe_host(self, turns: Turns) -> str | None:
        turns = validate_turns(turns)
        t_send = self.now_us
        self._advance_rivals(t_send)
        info = self._evaluator.probe_info(self._winner, turns, self._inner.collision)
        hit = False
        responder = None
        if info.ok and info.blocked is None:
            target = info.delivered_to
            assert target is not None
            arrival = t_send + self._timing.wire_time_us(info.hops)
            if target == self._winner or not self._is_active(target, arrival):
                hit = True
                responder = target
            else:
                # Busy rival: no answer — but it heard our address.
                self.anchor_misses += 1
                if self._winner > target:
                    self._yielded.setdefault(target, arrival)
        cost = self._jittered(
            self._timing.probe_response_us(info.hops, info.hops)
            if hit
            else self._timing.probe_timeout_us()
        )
        self.stats.record(ProbeRecord(ProbeKind.HOST, turns, hit, cost, responder))
        return responder

    def probe_switch(self, turns: Turns) -> bool:
        turns = validate_turns(turns)
        self._advance_rivals(self.now_us)
        loop = switch_probe_turns(turns)
        info = self._evaluator.probe_info(self._winner, loop, self._inner.collision)
        hit = info.ok and info.blocked is None
        cost = self._jittered(
            self._timing.probe_response_us(info.hops, 0)
            if hit
            else self._timing.probe_timeout_us()
        )
        self.stats.record(
            ProbeRecord(ProbeKind.SWITCH, turns, hit, cost, "switch" if hit else None)
        )
        return hit

    def _jittered(self, cost: float) -> float:
        if not self._jitter:
            return cost
        return cost * self._rng.uniform(1.0 - self._jitter, 1.0 + self._jitter)


# Cache of rival schedules per (network identity, depth): they are
# deterministic and expensive; election_times reuses them across seeds.
_SCHEDULE_CACHE: dict[tuple[int, int, int], dict[str, list[tuple[float, str]]]] = {}


def election_run(
    net: Network,
    *,
    search_depth: int,
    participants: list[str] | None = None,
    collision: CollisionModel | None = None,
    timing: TimingModel = MYRINET_TIMING,
    jitter: float = 0.08,
    start_spread_ms: float = 30.0,
    rival_probe_cap: int = 600,
    seed: int = 0,
) -> ElectionOutcome:
    """Simulate one election-mode mapping run."""
    collision = collision or CircuitModel()
    hosts = sorted(participants if participants is not None else net.hosts)
    if not hosts:
        raise ValueError("election needs at least one participant")
    winner = hosts[-1]
    rng = random.Random(seed)

    cache_key = (
        id(net),
        net.n_wires,
        tuple(hosts),
        search_depth,
        rival_probe_cap,
    )
    schedules = _SCHEDULE_CACHE.get(cache_key)
    if schedules is None:
        schedules = {
            h: _rival_schedule(
                net,
                h,
                search_depth=search_depth,
                collision=collision,
                timing=timing,
                cap=rival_probe_cap,
            )
            for h in hosts
            if h != winner
        }
        _SCHEDULE_CACHE[cache_key] = schedules

    start_us = {h: rng.uniform(0.0, start_spread_ms * 1000.0) for h in hosts}
    rival_events: list[tuple[float, str, str]] = []
    rival_end: dict[str, float] = {}
    for h, sched in schedules.items():
        for t_rel, target in sched:
            rival_events.append((start_us[h] + t_rel, h, target))
        rival_end[h] = sched[-1][0] if sched else 0.0

    svc = _ElectionProbeService(
        net,
        winner,
        collision=collision,
        timing=timing,
        start_us=start_us,
        rival_events=rival_events,
        rival_end_us=rival_end,
        jitter=jitter,
        rng=rng,
    )
    result = BerkeleyMapper(svc, search_depth=search_depth, host_first=False).run()
    elapsed_us = svc.now_us  # includes the winner's own start delay
    return ElectionOutcome(
        winner=winner,
        elapsed_ms=elapsed_us / 1000.0,
        map_result=result,
        yield_times_ms={h: t / 1000.0 for h, t in svc.yield_times().items()},
        anchor_misses=svc.anchor_misses,
    )


def election_times(
    net: Network,
    *,
    search_depth: int,
    runs: int = 10,
    base_seed: int = 0,
    **kwargs,
):
    """min/avg/max election-mode times over seeds (the Figure 7 column)."""
    from repro.core.parallel import TimingSummary

    times = [
        election_run(
            net, search_depth=search_depth, seed=base_seed + i, **kwargs
        ).elapsed_ms
        for i in range(runs)
    ]
    return TimingSummary(
        min_ms=min(times),
        avg_ms=statistics.fmean(times),
        max_ms=max(times),
        runs=runs,
    )
