"""Figure 10 / Section 5.4 — the Myricom Algorithm comparison."""

from repro.experiments import fig10_myricom


def test_fig10_myricom_comparison(once, benchmark):
    rows = once(fig10_myricom.run)
    for row in rows:
        assert row.myricom_correct
        # Paper: 3.2x / 3.6x / 5.4x messages; 5.5x / 3.9x / 3.9x time.
        # Require the reproduced ratios to be integer-factor (>2x) and
        # bounded (<10x).
        assert 2.0 <= row.msg_ratio <= 10.0, row.system
        assert 2.0 <= row.time_ratio <= 10.0, row.system
    by_system = {r.system: r for r in rows}
    # The message ratio grows with system size (the O(N^2) compare term).
    assert by_system["C+A+B"].msg_ratio >= by_system["C"].msg_ratio * 0.9
    benchmark.extra_info["msg_ratios"] = {
        r.system: round(r.msg_ratio, 1) for r in rows
    }
    benchmark.extra_info["paper_msg_ratios"] = {
        "C": 3.2, "C+A": 3.6, "C+A+B": 5.4
    }
    benchmark.extra_info["time_ratios"] = {
        r.system: round(r.time_ratio, 1) for r in rows
    }
