"""The periodic remapping daemon: the system behavior of the abstract.

"The system periodically discovers the network topology and uses it to
compute and to distribute a set of mutually deadlock-free routes to all
network interfaces."

:class:`RemapperDaemon` packages one complete cycle — map, diff against the
previous map, and (only when something changed) recompute + verify +
distribute routes — and keeps a history of cycles so operators can see what
changed when. The daemon is driven explicitly (``run_cycle()``) so tests
and simulations control time; a deployment would call it on a timer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.mapper import MapResult, MapSeed
from repro.core.mapper_protocol import (
    Mapper,
    get_mapper_spec,
    resolve_mapper_factory,
)
from repro.routing.compile_routes import RouteTable, compile_route_tables
from repro.routing.deadlock import routes_deadlock_free
from repro.routing.distribute import DistributionReport
from repro.routing.incremental import distribute_incremental
from repro.routing.paths import all_pairs_updown_paths
from repro.routing.updown import orient_updown
from repro.simulator.collision import CircuitModel, CollisionModel
from repro.simulator.faults import FaultModel
from repro.simulator.stack import build_service_stack
from repro.simulator.timing import MYRINET_TIMING, TimingModel
from repro.topology.analysis import recommended_search_depth
from repro.topology.delta import EMPTY_DELTA
from repro.topology.diff import MapDiff, diff_networks
from repro.topology.model import Network

__all__ = ["RemapCycle", "RemapperDaemon"]


@dataclass(slots=True)
class RemapCycle:
    """Record of one map/diff/route cycle."""

    index: int
    map_result: MapResult
    diff: MapDiff
    routes_recomputed: bool
    deadlock_free: bool | None
    n_routes: int
    distribution: DistributionReport | None
    elapsed_ms: float
    #: Whether this cycle's map adopted subtrees from the previous cycle.
    incremental: bool = False
    #: Why an incremental cycle fell back to from-scratch, if it did
    #: (``None`` when it seeded successfully or seeding was never planned).
    seed_fallback: str | None = None
    #: Probes this cycle avoided versus the last from-scratch baseline
    #: (0 for unseeded cycles or before a baseline exists).
    probes_saved: int = 0
    #: Prior-map nodes adopted intact by this cycle's mapper.
    subtrees_kept: int = 0

    @property
    def changed(self) -> bool:
        return not self.diff.identical


class RemapperDaemon:
    """Drive periodic remapping against a (possibly mutating) network.

    The daemon holds a reference to the *actual* network object purely as
    the thing to probe — all knowledge flows through the probe service it
    constructs each cycle, so topology mutations between cycles are
    discovered in-band like the real system would.

    ``service_factory``, ``mapper_factory`` and ``depth_fn`` are injection
    points for harnesses that wrap the cycle (the chaos campaign runner
    injects fault models and mid-cycle event schedules through them); the
    defaults reproduce the plain quiescent daemon exactly.

    ``mapper_factory`` also accepts a :data:`~repro.core.mapper_protocol.
    MAPPER_REGISTRY` name ("berkeley", "myricom", ...): the daemon then
    builds that algorithm each cycle — with the daemon's own defaults
    where the algorithm's constructor accepts them — and builds its
    probe service with the spec's required service class.
    """

    def __init__(
        self,
        net: Network,
        mapper_host: str,
        *,
        collision: CollisionModel | None = None,
        timing: TimingModel = MYRINET_TIMING,
        search_depth: int | None = None,
        max_explorations: int | None = 5000,
        service_factory: Callable[[Network, str], object] | None = None,
        mapper_factory: Callable[[object, int], Mapper] | str | None = None,
        depth_fn: Callable[[Network, str], int] | None = None,
        faults: FaultModel | None = None,
        incremental: bool = False,
    ) -> None:
        self._net = net
        self._mapper_host = mapper_host
        self._collision = collision or CircuitModel()
        self._timing = timing
        self._fixed_depth = search_depth
        self._max_explorations = max_explorations
        self._service_factory = service_factory
        self._mapper_factory = mapper_factory
        # A registry name may require a specific probe-service class
        # (e.g. "selfid" -> SelfIdProbeService); resolve it once.
        self._service_cls: type | None = None
        if isinstance(mapper_factory, str):
            self._service_cls = get_mapper_spec(mapper_factory).service_cls
        self._depth_fn = depth_fn
        # ``faults`` is only consulted for delta planning: when the harness
        # injects a fault model through its service factory, passing the
        # same object here lets cycle N+1 read the fault-side delta journal
        # too. ``incremental`` turns seed planning on; every fallback path
        # degrades to the plain from-scratch cycle and says why.
        self._faults = faults
        self._incremental = incremental
        self.history: list[RemapCycle] = []
        self.current_map: Network | None = None
        self.current_tables: dict[str, RouteTable] | None = None
        self._last_result: MapResult | None = None
        self._net_epoch: int | None = None
        self._fault_epoch: int | None = None
        self._scratch_probes: int | None = None

    # ------------------------------------------------------------------
    def _build_service(self) -> object:
        if self._service_factory is not None:
            return self._service_factory(self._net, self._mapper_host)
        return build_service_stack(
            self._net,
            self._mapper_host,
            collision=self._collision,
            timing=self._timing,
            service_cls=self._service_cls,
        )

    def _build_mapper(self, svc: object, depth: int) -> Mapper:
        factory = resolve_mapper_factory(
            self._mapper_factory if self._mapper_factory is not None
            else "berkeley",
            host_first=False,
            max_explorations=self._max_explorations,
        )
        return factory(svc, depth)

    def _plan_seed(self) -> tuple[MapSeed | None, str | None]:
        """Build a seed from the previous cycle's map and the delta
        journals, or explain why this cycle must run from scratch.

        The delta covers ``last map's epoch snapshot .. now``; the bounded
        journal window, an unbounded entry (probability reconfig) and any
        *added* connectivity (a plugged cable, a healed wire, a segment
        merge) all make incremental adoption unsound, so each returns a
        fallback reason instead of a seed.
        """
        prior = self._last_result
        if prior is None or self._net_epoch is None:
            return None, "no prior map to seed from"
        topo = self._net.affected_since(self._net_epoch)
        if topo is None:
            return None, "topology delta fell out of the journal window"
        fault = EMPTY_DELTA
        if self._faults is not None and self._fault_epoch is not None:
            fault = self._faults.affected_since(self._fault_epoch)
            if fault is None:
                return None, "fault delta fell out of the journal window"
        delta = topo.merge(fault)
        if delta.unbounded:
            return None, "delta is unbounded (not describable by wire ends)"
        if delta.added:
            return None, (
                "connectivity was added; a kept subtree cannot prove a "
                "wire it never probed does not exist"
            )
        return (
            MapSeed(
                network=prior.network,
                witnesses=prior.witnesses,
                affected=delta.removed,
                entries=prior.entry_ports,
            ),
            None,
        )

    def run_cycle(self) -> RemapCycle:
        """One complete cycle; appends to and returns from ``history``."""
        if self._fixed_depth:
            depth = self._fixed_depth
        elif self._depth_fn is not None:
            depth = self._depth_fn(self._net, self._mapper_host)
        else:
            depth = recommended_search_depth(self._net, self._mapper_host)
        svc = self._build_service()
        seed: MapSeed | None = None
        plan_fallback: str | None = None
        if self._incremental:
            seed, plan_fallback = self._plan_seed()
        # Snapshot the journals *before* mapping: anything that mutates
        # mid-run lands after these epochs and is charged to the next
        # cycle's delta, never silently skipped.
        net_epoch = self._net.topology_epoch
        fault_epoch = (
            self._faults.fault_epoch if self._faults is not None else None
        )
        mapper = self._build_mapper(svc, depth)
        if seed is not None:
            seeder = getattr(mapper, "seed_with", None)
            if seeder is None:
                seed, plan_fallback = None, "mapper does not support seeding"
            else:
                seeder(seed)
        result = mapper.map()
        new_map = result.network
        self._last_result = result
        self._net_epoch = net_epoch
        self._fault_epoch = fault_epoch
        probes_saved = 0
        if result.seeded:
            if self._scratch_probes is not None:
                probes_saved = max(
                    0, self._scratch_probes - result.stats.total_probes
                )
        else:
            self._scratch_probes = result.stats.total_probes

        if self.current_map is None:
            diff = MapDiff(identical=False)
        else:
            diff = diff_networks(self.current_map, new_map)

        seed_fallback: str | None = None
        if self._incremental and not result.seeded:
            seed_fallback = result.seed_fallback or plan_fallback

        elapsed = result.stats.elapsed_ms
        if diff.identical and self.current_tables is not None:
            cycle = RemapCycle(
                index=len(self.history),
                map_result=result,
                diff=diff,
                routes_recomputed=False,
                deadlock_free=None,
                n_routes=sum(len(t) for t in self.current_tables.values()),
                distribution=None,
                elapsed_ms=elapsed,
                incremental=result.seeded,
                seed_fallback=seed_fallback,
                probes_saved=probes_saved,
                subtrees_kept=result.kept_nodes,
            )
            self.history.append(cycle)
            return cycle

        orientation = orient_updown(new_map)
        paths = all_pairs_updown_paths(new_map, orientation)
        tables = compile_route_tables(new_map, paths, orientation=orientation)
        safe = routes_deadlock_free(tables)
        # Incremental distribution: push only per-host deltas against the
        # previous generation (the first cycle degenerates to a full push).
        report = distribute_incremental(
            new_map,
            self._mapper_host,
            tables,
            self.current_tables,
            timing=self._timing,
        )
        self.current_map = new_map
        self.current_tables = tables
        cycle = RemapCycle(
            index=len(self.history),
            map_result=result,
            diff=diff,
            routes_recomputed=True,
            deadlock_free=safe,
            n_routes=sum(len(t) for t in tables.values()),
            distribution=report,
            elapsed_ms=elapsed + report.elapsed_ms,
            incremental=result.seeded,
            seed_fallback=seed_fallback,
            probes_saved=probes_saved,
            subtrees_kept=result.kept_nodes,
        )
        self.history.append(cycle)
        return cycle

    # ------------------------------------------------------------------
    def route(self, src: str, dst: str):
        """The current source route between two hosts, or None."""
        if self.current_tables is None:
            return None
        table = self.current_tables.get(src)
        if table is None:
            return None
        compiled = table.routes.get(dst)
        return compiled.turns if compiled else None
