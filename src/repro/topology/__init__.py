"""Network topology substrate: the formal model of Section 2.1.

A network is a finite multigraph on hosts ``H`` and switches ``S``. Edges are
*wires*; each wire end is a ``(node, port)`` pair, and no two wire ends
incident on the same node share a port number. Switches have ports 0..7
(radix configurable), hosts have the single port 0.

The public surface of this package:

- :class:`~repro.topology.model.Network` — the multigraph with port-level
  precision and invariant checking.
- :class:`~repro.topology.builder.NetworkBuilder` — fluent construction.
- :mod:`~repro.topology.generators` — Berkeley NOW subclusters, fat trees,
  regular and random topologies.
- :mod:`~repro.topology.analysis` — diameter, switch-bridges, the set ``F``,
  ``Q(v)`` / ``Q`` (Definitions 2 and 3), and the core ``N - F``.
- :mod:`~repro.topology.isomorphism` — port-aware isomorphism tests.
"""

from repro.topology.model import (
    HOST_PORT,
    SWITCH_RADIX,
    Network,
    NodeKind,
    PortRef,
    Wire,
    TopologyError,
)
from repro.topology.builder import NetworkBuilder

__all__ = [
    "HOST_PORT",
    "SWITCH_RADIX",
    "Network",
    "NetworkBuilder",
    "NodeKind",
    "PortRef",
    "TopologyError",
    "Wire",
]
