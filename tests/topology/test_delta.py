"""Delta-journal unit tests: the contract every incremental consumer
leans on (see docs/INCREMENTAL.md).

The fault-side journal is covered in tests/simulator/test_faults.py; this
module pins the primitives (`Delta`, `DeltaJournal`) and the topology-side
journaling through `Network.affected_since`.
"""

import pytest

from repro.topology.delta import (
    Delta,
    DeltaJournal,
    EMPTY_DELTA,
    UNBOUNDED_DELTA,
    merge_deltas,
)
from repro.topology.model import Network


def _net() -> Network:
    net = Network()
    net.add_switch("s0", radix=4)
    net.add_switch("s1", radix=4)
    net.add_host("h0")
    net.connect("h0", 0, "s0", 0)
    net.connect("s0", 1, "s1", 1)
    return net


class TestDelta:
    def test_empty_and_endpoints(self):
        assert EMPTY_DELTA.empty
        assert not UNBOUNDED_DELTA.empty
        d = Delta(removed=frozenset({("s0", 1)}), added=frozenset({("s1", 2)}))
        assert not d.empty
        assert d.endpoints == {("s0", 1), ("s1", 2)}

    def test_merge_unions_both_directions(self):
        """A remove-then-re-add keeps the end in both sets: a consumer from
        before the pair must still re-derive anything that touched it."""
        cut = Delta(removed=frozenset({("s0", 1), ("s1", 1)}))
        plug = Delta(added=frozenset({("s0", 1), ("s1", 1)}))
        merged = cut.merge(plug)
        assert merged.removed == merged.added == {("s0", 1), ("s1", 1)}
        assert not merged.unbounded

    def test_merge_short_circuits_on_empty(self):
        d = Delta(removed=frozenset({("s0", 1)}))
        assert d.merge(EMPTY_DELTA) is d
        assert EMPTY_DELTA.merge(d) is d

    def test_unbounded_is_sticky_through_merges(self):
        d = Delta(removed=frozenset({("s0", 1)}))
        assert d.merge(UNBOUNDED_DELTA).unbounded
        assert merge_deltas([EMPTY_DELTA, UNBOUNDED_DELTA, d]).unbounded

    def test_merge_deltas_of_nothing_is_no_change(self):
        assert merge_deltas([]) is EMPTY_DELTA


class TestDeltaJournal:
    def test_since_merges_exactly_the_gap(self):
        journal = DeltaJournal()
        a = Delta(removed=frozenset({("s0", 1)}))
        b = Delta(added=frozenset({("s1", 2)}))
        journal.record(a)
        journal.record(b)
        assert journal.since(0, 2).endpoints == {("s0", 1), ("s1", 2)}
        assert journal.since(1, 2) == b
        assert journal.since(2, 2) is EMPTY_DELTA

    def test_window_eviction_advances_base_and_answers_none(self):
        journal = DeltaJournal(maxlen=2)
        for port in range(3):
            journal.record(Delta(removed=frozenset({("s0", port)})))
        assert journal.window_base == 1
        assert journal.since(0, 3) is None  # fell out of the window
        assert journal.since(1, 3).removed == {("s0", 1), ("s0", 2)}

    def test_future_and_unjournaled_epochs_answer_none(self):
        journal = DeltaJournal()
        journal.record(EMPTY_DELTA)
        assert journal.since(5, 1) is None
        # A gap between journal length and the owner's counter means some
        # mutation bypassed the journal: the only sound answer is None.
        assert journal.since(0, 2) is None

    def test_rejects_a_windowless_journal(self):
        with pytest.raises(ValueError, match="at least one entry"):
            DeltaJournal(maxlen=0)


class TestDeltaJournalBoundaries:
    """Edge-of-window regressions for `since`.

    PR 8 made seeded remapping lean on these exact boundaries (a
    one-entry drift silently turns every incremental cycle into a full
    rebuild, or worse, under-invalidates); this class pins each edge so
    an off-by-one in `record`'s eviction or `since`'s range check fails a
    named test instead of a chaos campaign.
    """

    def test_epoch_exactly_at_window_base_merges_the_full_window(self):
        journal = DeltaJournal(maxlen=2)
        deltas = [Delta(removed=frozenset({("s0", p)})) for p in range(3)]
        for d in deltas:
            journal.record(d)
        # Window now holds epochs 1->2 and 2->3; base == 1.
        assert journal.window_base == 1
        answer = journal.since(journal.window_base, 3)
        assert answer is not None
        assert answer.removed == {("s0", 1), ("s0", 2)}

    def test_epoch_one_below_window_base_answers_none(self):
        journal = DeltaJournal(maxlen=2)
        for p in range(4):
            journal.record(Delta(removed=frozenset({("s0", p)})))
        assert journal.window_base == 2
        assert journal.since(journal.window_base - 1, 4) is None
        assert journal.since(journal.window_base, 4) is not None

    def test_current_epoch_equality_wins_even_outside_the_window(self):
        """epoch == current_epoch means "nothing changed since you looked";
        that answer needs no journal entries at all, even after eviction
        has advanced the window past every recorded epoch."""
        journal = DeltaJournal(maxlen=1)
        for p in range(5):
            journal.record(Delta(removed=frozenset({("s0", p)})))
        assert journal.since(5, 5) is EMPTY_DELTA

    def test_single_entry_window_answers_only_the_last_bump(self):
        journal = DeltaJournal(maxlen=1)
        journal.record(Delta(removed=frozenset({("s0", 0)})))
        journal.record(Delta(removed=frozenset({("s0", 1)})))
        assert journal.window_base == 1
        assert journal.since(0, 2) is None
        assert journal.since(1, 2).removed == {("s0", 1)}

    def test_nonzero_base_constructor_aligns_epoch_arithmetic(self):
        journal = DeltaJournal(base=5)
        assert journal.window_base == 5
        assert journal.since(5, 5) is EMPTY_DELTA
        journal.record(Delta(added=frozenset({("s1", 2)})))
        assert journal.since(5, 6).added == {("s1", 2)}
        # Epochs from before the journal existed are unanswerable.
        assert journal.since(4, 6) is None

    def test_negative_and_reversed_epochs_answer_none(self):
        journal = DeltaJournal()
        journal.record(EMPTY_DELTA)
        assert journal.since(-1, 1) is None
        assert journal.since(1, 0) is None  # caller confusion, not a window

    def test_journal_ahead_of_the_owner_counter_answers_none(self):
        """len(entries) disagreeing with current_epoch in either direction
        means a bump bypassed the journal (or was double-journaled); both
        drifts must be unanswerable, not just the under-journaled one."""
        journal = DeltaJournal()
        journal.record(Delta(removed=frozenset({("s0", 0)})))
        journal.record(Delta(removed=frozenset({("s0", 1)})))
        assert journal.since(0, 1) is None  # journal ahead of counter
        assert journal.since(0, 3) is None  # journal behind the counter
        assert journal.since(0, 2) is not None  # exactly aligned


class TestNetworkJournal:
    def test_disconnect_journals_both_ends_as_removed(self):
        net = _net()
        epoch = net.topology_epoch
        net.disconnect(net.wire_at("s0", 1))
        delta = net.affected_since(epoch)
        assert delta.removed == {("s0", 1), ("s1", 1)}
        assert not delta.added and not delta.unbounded

    def test_connect_journals_both_ends_as_added(self):
        net = _net()
        epoch = net.topology_epoch
        net.connect("s0", 2, "s1", 2)
        delta = net.affected_since(epoch)
        assert delta.added == {("s0", 2), ("s1", 2)}
        assert not delta.removed

    def test_remove_node_journals_every_severed_wire(self):
        net = _net()
        epoch = net.topology_epoch
        net.remove_node("s1")
        delta = net.affected_since(epoch)
        assert {("s0", 1), ("s1", 1)} <= delta.removed

    def test_node_additions_journal_empty(self):
        """Adding an unwired node changes no wire end: consumers holding
        cached walks keep everything."""
        net = _net()
        epoch = net.topology_epoch
        net.add_switch("s2", radix=4)
        net.add_host("h1")
        delta = net.affected_since(epoch)
        assert delta is not None and delta.empty

    def test_quiet_network_answers_empty(self):
        net = _net()
        assert net.affected_since(net.topology_epoch) is EMPTY_DELTA

    def test_cut_then_replug_reports_the_end_in_both_sets(self):
        net = _net()
        epoch = net.topology_epoch
        wire = net.wire_at("s0", 1)
        ends = (wire.a, wire.b)
        net.disconnect(wire)
        net.connect(ends[0].node, ends[0].port, ends[1].node, ends[1].port)
        delta = net.affected_since(epoch)
        assert delta.removed == delta.added == {("s0", 1), ("s1", 1)}
