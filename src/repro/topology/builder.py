"""Fluent construction helpers for :class:`~repro.topology.model.Network`.

The generators and many tests build small topologies by hand; this builder
removes the port-bookkeeping boilerplate (auto-assigning the next free port)
while keeping explicit port control available when an experiment needs a
specific wiring (e.g. reproducing the Figure 4 irregularities).
"""

from __future__ import annotations

from repro.topology.model import HOST_PORT, Network, TopologyError, Wire

__all__ = ["NetworkBuilder"]


class NetworkBuilder:
    """Build a :class:`Network` incrementally.

    Example::

        b = NetworkBuilder()
        b.switch("s0")
        b.hosts("h0", "h1")
        b.attach("h0", "s0")          # host -> next free switch port
        b.attach("h1", "s0", port=5)  # host -> explicit switch port
        net = b.build()
    """

    def __init__(self, *, default_radix: int = 8) -> None:
        self._net = Network(default_radix=default_radix)

    # -- nodes ---------------------------------------------------------
    def host(self, name: str, **meta: object) -> "NetworkBuilder":
        self._net.add_host(name, **meta)
        return self

    def hosts(self, *names: str) -> "NetworkBuilder":
        for name in names:
            self._net.add_host(name)
        return self

    def switch(self, name: str, *, radix: int | None = None, **meta: object) -> "NetworkBuilder":
        self._net.add_switch(name, radix=radix, **meta)
        return self

    def switches(self, *names: str) -> "NetworkBuilder":
        for name in names:
            self._net.add_switch(name)
        return self

    # -- wires ---------------------------------------------------------
    def attach(self, host: str, switch: str, *, port: int | None = None) -> Wire:
        """Wire a host's single port to a switch port (next free by default)."""
        if not self._net.is_host(host):
            raise TopologyError(f"{host} is not a host")
        sw_port = self._next_free(switch) if port is None else port
        return self._net.connect(host, HOST_PORT, switch, sw_port)

    def link(
        self,
        node_a: str,
        node_b: str,
        *,
        port_a: int | None = None,
        port_b: int | None = None,
    ) -> Wire:
        """Wire two switches (or any two nodes) together.

        Ports default to the next free port on each side. ``node_a`` may
        equal ``node_b`` to install a loopback cable between two ports of
        one switch.
        """
        pa = self._next_free(node_a) if port_a is None else port_a
        if port_b is None:
            # For a loopback on the same switch, skip the port we just chose.
            pb = self._next_free(node_b, exclude=pa if node_a == node_b else None)
        else:
            pb = port_b
        return self._net.connect(node_a, pa, node_b, pb)

    def chain(self, *nodes: str) -> "NetworkBuilder":
        """Wire consecutive nodes in a path, auto-assigning ports."""
        for a, b in zip(nodes, nodes[1:]):
            if self._net.is_host(a):
                self.attach(a, b)
            elif self._net.is_host(b):
                self.attach(b, a)
            else:
                self.link(a, b)
        return self

    # -- finish ----------------------------------------------------------
    def build(self, *, validate: bool = True, require_connected: bool = False) -> Network:
        if validate:
            self._net.validate(require_connected=require_connected)
        return self._net

    def peek(self) -> Network:
        """The network under construction, without validation."""
        return self._net

    # -- internals -------------------------------------------------------
    def _next_free(self, node: str, exclude: int | None = None) -> int:
        for p in self._net.free_ports(node):
            if p != exclude:
                return p
        raise TopologyError(f"no free port on {node}")
