"""Adversarial probe services: the MappingError paths.

Under the paper's assumptions deductions never contradict (Lemma 2). These
tests feed the mapper *inconsistent* responses — the kind cross-traffic
corruption or broken firmware could produce — and assert it fails loudly
with :class:`MappingError` instead of emitting a wrong map silently.
"""

import pytest

from repro.core.mapper import BerkeleyMapper, MappingError
from repro.simulator.probes import ProbeStats
from repro.simulator.quiescent import QuiescentProbeService
from repro.topology.analysis import recommended_search_depth


class _Liar:
    """Wrap a real service but rewrite selected host-probe answers."""

    def __init__(self, inner, rewrites):
        self._inner = inner
        self._rewrites = rewrites  # turns tuple -> fake host name

    @property
    def mapper_host(self):
        return self._inner.mapper_host

    @property
    def stats(self) -> ProbeStats:
        return self._inner.stats

    def probe_host(self, turns):
        real = self._inner.probe_host(turns)
        return self._rewrites.get(tuple(turns), real)

    def probe_switch(self, turns):
        return self._inner.probe_switch(turns)


class TestContradictions:
    def test_duplicate_host_name_on_two_ports(self, tiny_net):
        """The same host name reported on two different switch ports
        forces a port-to-itself or shift contradiction."""
        depth = recommended_search_depth(tiny_net, "h0")
        inner = QuiescentProbeService(tiny_net, "h0")
        # Truth: port 3 is h1, port 7 is h2. Lie: both claim to be h1.
        liar = _Liar(inner, {(7,): "h1"})
        with pytest.raises(MappingError):
            BerkeleyMapper(liar, search_depth=depth, host_first=True).run()

    def test_mapper_host_reported_elsewhere(self, tiny_net):
        """A probe claiming the mapper's own host hangs off another port
        contradicts the root anchoring."""
        depth = recommended_search_depth(tiny_net, "h0")
        inner = QuiescentProbeService(tiny_net, "h0")
        liar = _Liar(inner, {(3,): "h0"})
        with pytest.raises(MappingError):
            BerkeleyMapper(liar, search_depth=depth, host_first=True).run()

    def test_consistent_renaming_is_not_detectable(self, tiny_net):
        """A systematic renaming (h1<->h2 swapped everywhere) is a
        consistent alternative world: the mapper cannot and should not
        reject it; it maps the renamed world."""
        depth = recommended_search_depth(tiny_net, "h0")
        inner = QuiescentProbeService(tiny_net, "h0")
        liar = _Liar(inner, {(3,): "h2", (7,): "h1"})
        result = BerkeleyMapper(liar, search_depth=depth, host_first=True).run()
        assert set(result.network.hosts) == {"h0", "h1", "h2"}
        # The produced map is tiny_net with the two hosts exchanged.
        att1 = result.network.host_attachment("h1")
        att2 = result.network.host_attachment("h2")
        assert att1 is not None and att2 is not None


class TestErrorMessages:
    def test_mapping_error_is_runtime_error(self):
        assert issubclass(MappingError, RuntimeError)

    def test_unresolved_multiwire_reported(self, tiny_net):
        """If deduction is interrupted (depth too small to resolve), the
        builder refuses to emit a multi-wired port."""
        # This situation cannot arise from honest quiescent probing with
        # the default pipeline (deductions drain fully), so simulate it by
        # corrupting a finished mapper's model directly.
        depth = recommended_search_depth(tiny_net, "h0")
        svc = QuiescentProbeService(tiny_net, "h0")
        mapper = BerkeleyMapper(svc, search_depth=depth, host_first=False)
        mapper._initialize()
        mapper._main_loop()
        # Corrupt: give some switch a second wire-end on an existing port.
        victim = next(
            v
            for v in mapper._live_vertices()
            if v.kind == "switch" and v.nbrs
        )
        idx = next(iter(victim.nbrs))
        other = next(
            v for v in mapper._live_vertices() if v is not victim
        )
        victim.nbrs[idx].add((other, 99))
        with pytest.raises(MappingError, match="multi-wire|port"):
            mapper._build_network()
