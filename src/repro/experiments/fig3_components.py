"""Figure 3 — A, B, and C subcluster components.

"Rows account for network interfaces, switches, and links in each
configuration. Each host has one network interface."

The generator enforces these counts at construction time; this experiment
re-derives them from the built networks and prints them against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import PAPER
from repro.experiments.tables import print_table
from repro.topology.generators import build_full_now, build_subcluster

__all__ = ["ComponentsRow", "run", "main"]


@dataclass(frozen=True, slots=True)
class ComponentsRow:
    subcluster: str
    interfaces: int
    switches: int
    links: int
    paper: tuple[int, int, int]

    @property
    def matches_paper(self) -> bool:
        return (self.interfaces, self.switches, self.links) == self.paper


def run() -> list[ComponentsRow]:
    rows = []
    for name in ("A", "B", "C"):
        net = build_subcluster(name)
        rows.append(
            ComponentsRow(
                subcluster=name,
                interfaces=net.n_hosts,
                switches=net.n_switches,
                links=net.n_wires,
                paper=PAPER.fig3[name],
            )
        )
    return rows


def main() -> None:
    rows = run()
    print_table(
        ["Subcluster", "# interfaces", "# switches", "# links", "paper", "match"],
        [
            (
                r.subcluster,
                r.interfaces,
                r.switches,
                r.links,
                "/".join(map(str, r.paper)),
                "yes" if r.matches_paper else "NO",
            )
            for r in rows
        ],
        title="Figure 3: A, B, and C subcluster components",
    )
    full = build_full_now()
    print(
        f"Full system (abstract): {full.n_hosts} nodes, {full.n_switches} "
        f"switches, {full.n_wires} links (paper: 100, 40, 193)"
    )


if __name__ == "__main__":
    main()
