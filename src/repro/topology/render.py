"""Rendering of network maps (Figures 4 and 5 of the paper).

The paper renders automatically generated maps as layered drawings: hosts on
top, then levels of switches with per-port fan-out. We provide two renderers:

- :func:`to_dot` — Graphviz source with port-labeled record nodes, the
  closest analogue of the paper's figures (render externally with ``dot``);
- :func:`to_ascii` — a plain-text layered summary suitable for terminals and
  test goldens: one line per switch listing each port's connection.

Both renderers order nodes deterministically so output is diffable.
"""

from __future__ import annotations

from io import StringIO

from repro.topology.model import Network

__all__ = ["to_ascii", "to_dot", "to_layered_ascii", "summary_line"]


def summary_line(net: Network) -> str:
    """One-line component summary matching the Figure 3 vocabulary."""
    return (
        f"{net.n_hosts} interfaces, {net.n_switches} switches, "
        f"{net.n_wires} links"
    )


def to_ascii(net: Network, *, title: str | None = None) -> str:
    """Layered text rendering: hosts, then each switch with its port table."""
    out = StringIO()
    if title:
        out.write(f"== {title} ==\n")
    out.write(summary_line(net) + "\n")
    hosts = sorted(net.hosts)
    out.write("hosts: " + " ".join(hosts) + "\n")
    for switch in sorted(net.switches):
        cells = []
        for port in range(net.radix(switch)):
            far = net.neighbor_at(switch, port)
            cells.append(f"{port}:{'-' if far is None else f'{far.node}.{far.port}'}")
        out.write(f"{switch}  [" + " ".join(cells) + "]\n")
    return out.getvalue()


def to_layered_ascii(net: Network, *, title: str | None = None) -> str:
    """Figure 4-style layered rendering: hosts on top, switch levels below.

    Levels are assigned by hop distance from the hosts (leaf switches at
    level 1, their uplink switches at level 2, ...), which reconstructs the
    paper's drawing convention without requiring generator metadata — so it
    works on mapper *output*, whose switches are anonymous.
    """
    out = StringIO()
    if title:
        out.write(f"== {title} ==\n")
    out.write(summary_line(net) + "\n\n")

    # Level = shortest hop distance to any host (hosts at 0).
    level: dict[str, int] = {h: 0 for h in net.hosts}
    frontier = sorted(net.hosts)
    depth = 0
    while frontier:
        depth += 1
        nxt: list[str] = []
        for node in frontier:
            for wire in net.wires_of(node):
                for end in (wire.a, wire.b):
                    far = wire.other_end(end).node if end.node == node else None
                    if far is not None and far not in level:
                        level[far] = depth
                        nxt.append(far)
        frontier = sorted(set(nxt))
    unreachable = [n for n in net.nodes if n not in level]

    hosts = sorted(net.hosts)
    out.write("hosts:  " + " ".join(hosts) + "\n")
    max_level = max((lv for lv in level.values()), default=0)
    for lv in range(1, max_level + 1):
        members = sorted(n for n, l in level.items() if l == lv and net.is_switch(n))
        if not members:
            continue
        out.write(f"level {lv}:\n")
        for switch in members:
            down, lateral, up = [], [], []
            for port in net.used_ports(switch):
                far = net.neighbor_at(switch, port)
                assert far is not None
                tag = f"{far.node}"
                far_level = level.get(far.node)
                if far_level is None or far_level == lv:
                    lateral.append(tag)
                elif far_level < lv:
                    down.append(tag)
                else:
                    up.append(tag)
            parts = []
            if down:
                parts.append("down: " + " ".join(sorted(down)))
            if lateral:
                parts.append("same: " + " ".join(sorted(lateral)))
            if up:
                parts.append("up: " + " ".join(sorted(up)))
            out.write(f"  {switch}  [" + " | ".join(parts) + "]\n")
    if unreachable:
        out.write("unreachable: " + " ".join(sorted(unreachable)) + "\n")
    return out.getvalue()


def to_dot(net: Network, *, title: str = "san-map") -> str:
    """Graphviz source with record-style switches exposing port sockets."""
    out = StringIO()
    out.write(f'graph "{title}" {{\n')
    out.write("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")
    for host in sorted(net.hosts):
        out.write(f'  "{host}" [shape=ellipse];\n')
    for switch in sorted(net.switches):
        ports = "|".join(f"<p{p}> {p}" for p in range(net.radix(switch)))
        out.write(f'  "{switch}" [shape=record, label="{{{switch}|{{{ports}}}}}"];\n')
    for wire in sorted(net.wires, key=lambda w: (w.a, w.b)):
        ends = []
        for end in (wire.a, wire.b):
            if net.is_switch(end.node):
                ends.append(f'"{end.node}":p{end.port}')
            else:
                ends.append(f'"{end.node}"')
        out.write(f"  {ends[0]} -- {ends[1]};\n")
    out.write("}\n")
    return out.getvalue()
