"""Directed-channel occupancy for concurrent worms.

Under quiescence a probe can only collide with itself; with several mappers
active (election mode) or application cross-traffic present, worms collide
with *each other*. We model each wire as two directed channels. A worm
occupies every channel of its path for an interval derived from the timing
model (cut-through pipelining: the occupancy of hop ``i`` starts when the
head reaches it and ends when the tail clears it). A worm finding any
channel of its path busy blocks and — like the hardware — is destroyed by
the forward reset after the ROM timeout; the observable effect at its
sender is an unanswered probe.

This is a message-granularity approximation of flit-level wormhole traffic:
it preserves what the experiments measure (which probes are lost to
contention, and the time costs), at a small fraction of the cost of a
flit simulator. DESIGN.md records the substitution.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.simulator.path_eval import PathResult, ProbeInfo, Traversal
from repro.simulator.timing import TimingModel

__all__ = ["ChannelOccupancy", "WormPlacement"]

Channel = tuple  # (PortRef, PortRef) directed


@dataclass(frozen=True, slots=True)
class WormPlacement:
    """Outcome of trying to place a worm on the fabric at a given time."""

    ok: bool
    start_us: float
    finish_us: float
    blocked_channel: Channel | None = None


class ChannelOccupancy:
    """Per-channel sorted busy intervals with overlap queries."""

    #: Relative-plan memo bound; cleared wholesale on overflow. Probe paths
    #: repeat heavily (retries, X-sweeps, cross-traffic pairs), so the memo
    #: hit rate is high; the bound keeps adversarial traffic from growing it.
    _PLAN_MEMO_MAX = 4096

    def __init__(self, timing: TimingModel) -> None:
        self._timing = timing
        self._busy: dict[Channel, list[tuple[float, float]]] = {}
        self._plan_memo: dict[tuple, list[tuple[Channel, float, float]]] = {}

    def _relative_plan(
        self, traversals, message_bytes: int | None
    ) -> list[tuple[Channel, float, float]]:
        """Per-channel busy offsets for a worm launched at time zero.

        Offsets depend only on the traversal sequence and the message size,
        so they are memoized across placements of the same path.
        """
        key = (message_bytes or 0, tuple(traversals))
        plan = self._plan_memo.get(key)
        if plan is None:
            t = self._timing
            tx = (message_bytes or t.probe_bytes) / t.link_bandwidth_bytes_per_us
            plan = []
            for i, tr in enumerate(traversals):
                begin = i * t.switch_latency_us
                end = begin + tx + t.switch_latency_us
                plan.append(((tr.src, tr.dst), begin, end))
            if len(self._plan_memo) >= self._PLAN_MEMO_MAX:
                self._plan_memo.clear()
            self._plan_memo[key] = plan
        return plan

    def _intervals(
        self,
        path: PathResult | ProbeInfo,
        start_us: float,
        message_bytes: int | None = None,
    ) -> list[tuple[Channel, float, float]]:
        """Busy interval per channel of a worm launched at ``start_us``.

        Hop ``i`` becomes busy when the head arrives (i switch latencies in)
        and stays busy until the tail clears it (one message-transmission
        time later). ``message_bytes`` overrides the probe size — cross
        traffic carries application payloads, not probe-sized messages.
        ``path`` may be anything exposing ``.traversals`` (a full
        :class:`PathResult` or the evaluator's lightweight ``ProbeInfo``).
        """
        return [
            (channel, start_us + begin, start_us + end)
            for channel, begin, end in self._relative_plan(
                path.traversals, message_bytes
            )
        ]

    def try_place(
        self,
        path: PathResult | ProbeInfo,
        start_us: float,
        *,
        record_blocked: bool = True,
        message_bytes: int | None = None,
    ) -> WormPlacement:
        """Place the worm if no channel conflicts; record its occupancy.

        On conflict the worm blocks: "should a message block and wait for an
        output port, the rest of the message may remain in the network,
        occupying switch and link resources" (Section 1.1) until the ROM
        timeout fires the forward reset. With ``record_blocked`` the partial
        path up to the blocked channel therefore stays busy for the
        ``blocked_port_timeout`` — this is what makes contention cascade and
        produces the election mode's long-tail mapping times.
        """
        plan = self._intervals(path, start_us, message_bytes)
        for k, (channel, begin, end) in enumerate(plan):
            if self._overlaps(channel, begin, end):
                reset_at = begin + self._timing.blocked_port_timeout_us
                if record_blocked:
                    for held_channel, held_begin, _held_end in plan[:k]:
                        self._insert(held_channel, held_begin, reset_at)
                return WormPlacement(
                    ok=False,
                    start_us=start_us,
                    finish_us=reset_at,
                    blocked_channel=channel,
                )
        for channel, begin, end in plan:
            self._insert(channel, begin, end)
        finish = plan[-1][2] if plan else start_us
        return WormPlacement(ok=True, start_us=start_us, finish_us=finish)

    def utilization(self, channel: Channel, horizon_us: float) -> float:
        """Fraction of [0, horizon] the channel was busy (for reporting)."""
        if horizon_us <= 0:
            return 0.0
        busy = sum(
            min(end, horizon_us) - max(begin, 0.0)
            for begin, end in self._busy.get(channel, [])
            if end > 0 and begin < horizon_us
        )
        return busy / horizon_us

    # -- internals -------------------------------------------------------
    def _overlaps(self, channel: Channel, begin: float, end: float) -> bool:
        ivs = self._busy.get(channel)
        if not ivs:
            return False
        idx = bisect.bisect_left(ivs, (begin, begin))
        for j in (idx - 1, idx):
            if 0 <= j < len(ivs):
                b, e = ivs[j]
                if b < end and begin < e:
                    return True
        return False

    def _insert(self, channel: Channel, begin: float, end: float) -> None:
        ivs = self._busy.setdefault(channel, [])
        bisect.insort(ivs, (begin, end))
