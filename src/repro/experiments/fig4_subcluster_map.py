"""Figure 4 — the automatically generated map of the C subcluster.

"This 35-node cluster is typical of the three subclusters of the system.
The single host at the bottom is a machine dedicated to running system
services." The paper's figure is a drawing of the mapper's output; here the
mapper runs for real, the produced map is verified isomorphic to the actual
core, and both an ASCII rendering and Graphviz source are emitted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instrumentation import cache_summary
from repro.core.mapper import MapResult
from repro.core.mapper_protocol import create_mapper
from repro.experiments.common import system
from repro.simulator.path_eval import EvalCacheStats
from repro.simulator.stack import build_service_stack
from repro.topology.isomorphism import IsomorphismReport, match_networks
from repro.topology.render import to_ascii, to_dot

__all__ = ["MapExperiment", "run", "main"]


@dataclass(slots=True)
class MapExperiment:
    system: str
    result: MapResult
    verification: IsomorphismReport
    ascii_map: str
    dot_source: str
    cache: EvalCacheStats | None = None


def run(name: str = "C") -> MapExperiment:
    fixture = system(name)
    svc = build_service_stack(fixture.net, fixture.mapper_host)
    result = create_mapper(
        "berkeley", svc, search_depth=fixture.search_depth, host_first=False
    ).map()
    verification = match_networks(result.network, fixture.core)
    return MapExperiment(
        system=name,
        result=result,
        verification=verification,
        ascii_map=to_ascii(result.network, title=f"map of {name}"),
        dot_source=to_dot(result.network, title=f"san-map-{name}"),
        cache=svc.eval_cache_stats,
    )


def main() -> None:
    exp = run("C")
    print(exp.ascii_map)
    print(
        f"verification: map isomorphic to actual core = "
        f"{bool(exp.verification)}"
        + (f" ({exp.verification.reason})" if exp.verification.reason else "")
    )
    print(cache_summary(exp.cache))
    print(
        f"(Graphviz source available from run().dot_source — "
        f"{len(exp.dot_source.splitlines())} lines)"
    )


if __name__ == "__main__":
    main()
