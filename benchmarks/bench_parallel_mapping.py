"""Section 6 extension — parallel local mapping with partial-map exchange."""

from repro.experiments import parallel_ext


def test_parallel_mapping_vs_single(once, benchmark):
    rows = once(parallel_ext.run, "C+A+B")
    single, parallel = rows
    assert single.complete
    assert parallel.complete
    # The conjectured win: parallel wall clock (max local time) beats the
    # single deep mapper, at the cost of redundant total probes.
    assert parallel.wall_ms < single.wall_ms
    assert parallel.probes > single.probes
    benchmark.extra_info["wall_ms"] = {
        "single": round(single.wall_ms),
        "parallel": round(parallel.wall_ms),
    }
    benchmark.extra_info["total_probes"] = {
        "single": single.probes,
        "parallel": parallel.probes,
    }
