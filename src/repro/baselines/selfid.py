"""Hypothetical self-identifying-switch mapper (Section 6 discussion).

"It is tempting to believe that architectural support for self-identifying
switches would make the network mapping problem trivial. ... if a probe made
it to a switch and back, it would carry a unique identifier and the
exploration process would be simpler."

This module implements that hypothetical: a probe service extension whose
switch-probes return the far switch's unique id (simulating the hardware
change), and a BFS mapper that exploits it. Replicates never exist — every
discovered switch is recognized on sight — so each switch is explored
exactly once, and identifying which *port* of an already-known switch a new
wire lands on needs a single bounded X-sweep against that one switch (the
Myricom Algorithm needs the same sweep against *every* explored switch).

The paper's caveat stands: self-identification removes replicate detection,
not the probe-collision or cross-traffic problems — the service still
applies the collision model, so a sweep probe can fail and the wire's far
index stay unresolved (counted in ``unresolved_wires``).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass

from repro.core.mapper import MapResult, MappingError
from repro.core.mapper_protocol import MapperCapabilities, register_mapper
from repro.core.planner import PortPlan
from repro.simulator.path_eval import PathStatus
from repro.simulator.probes import ProbeKind, ProbeStats
from repro.simulator.quiescent import QuiescentProbeService
from repro.simulator.stack import ProbeContext
from repro.simulator.turns import Turns, reverse_turns, switch_probe_turns, validate_turns
from repro.topology.model import Network

__all__ = ["SelfIdMapper", "SelfIdProbeService", "SelfIdResult"]


class SelfIdProbeService(QuiescentProbeService):
    """Probe service for hardware with self-identifying switches."""

    def _eval_switch_id(self, ctx: ProbeContext) -> None:
        loop = switch_probe_turns(ctx.turns)
        path = self._path(loop)
        ctx.info = path
        if (
            path.status is PathStatus.DELIVERED
            and self.collision.blocked_at(path.traversals) is None
            and not self.faults.kills_probe(path)
        ):
            # The identified switch is the bounce point: the node reached
            # after the forward half of the loopback string.
            bounce = path.nodes[len(ctx.turns) + 1]
            ctx.hit = True
            ctx.response = bounce
            ctx.payload = bounce

    def probe_switch_id(self, turns: Turns) -> str | None:
        """Switch-probe whose returning loopback carries the switch's id."""
        turns = validate_turns(turns)
        ctx = self._transact(
            ProbeKind.SWITCH, turns, self._eval_switch_id, round_trip=False
        )
        return ctx.payload if ctx.hit else None


@dataclass(slots=True)
class _IdSwitch:
    sid: str
    route: Turns
    ports: dict  # relative index -> ("host", name) | ("switch", (sid, rel))
    window: tuple[int, int]


@dataclass(slots=True)
class SelfIdResult:
    network: Network
    stats: ProbeStats
    mapper_host: str
    switches_explored: int
    pin_probes: int
    unresolved_wires: int

    @property
    def elapsed_ms(self) -> float:
        return self.stats.elapsed_ms


@register_mapper(
    "selfid",
    summary="hypothetical self-identifying-switch BFS (Section 6)",
    service_cls=SelfIdProbeService,
)
class SelfIdMapper:
    """BFS mapping with self-identifying switches: no replicates, ever."""

    capabilities = MapperCapabilities()

    def __init__(
        self, service: SelfIdProbeService, *, search_depth: int, radix: int = 8
    ) -> None:
        if search_depth < 1:
            raise ValueError("search_depth must be at least 1")
        self._svc = service
        self._depth = search_depth
        self._radix = radix
        self._pin_probes = 0
        self._unresolved = 0

    def run(self) -> SelfIdResult:
        svc = self._svc
        root_id = svc.probe_switch_id(())
        if root_id is None:
            raise MappingError("mapper host is not attached to a switch")
        switches: dict[str, _IdSwitch] = {
            root_id: _IdSwitch(
                root_id,
                (),
                {0: ("host", svc.mapper_host)},
                (0, self._radix - 1),
            )
        }
        frontier: deque[str] = deque([root_id])
        while frontier:
            sw = switches[frontier.popleft()]
            if len(sw.route) >= self._depth:
                continue
            self._scan(sw, switches, frontier)
        return SelfIdResult(
            network=self._build(switches),
            stats=svc.stats.snapshot(),
            mapper_host=svc.mapper_host,
            switches_explored=len(switches),
            pin_probes=self._pin_probes,
            unresolved_wires=self._unresolved,
        )

    def map(self) -> MapResult:
        """Protocol entry point: run and repackage as a ``MapResult``.

        Self-identification makes every switch final on first sight, so
        explorations and peak model size both equal the switch count and
        nothing merges (``run`` keeps the richer :class:`SelfIdResult`
        with pin-probe and unresolved-wire counts).
        """
        result = self.run()
        return MapResult(
            network=result.network,
            stats=result.stats,
            mapper_host=result.mapper_host,
            search_depth=self._depth,
            explorations=result.switches_explored,
            merges=0,
            peak_model_nodes=result.switches_explored,
        )

    # ------------------------------------------------------------------
    def _scan(
        self, sw: _IdSwitch, switches: dict[str, _IdSwitch], frontier: deque[str]
    ) -> None:
        plan = PortPlan(radix=self._radix)
        for idx in sw.ports:
            plan.feed(idx, True)
        while (turn := plan.next_turn()) is not None:
            if turn in sw.ports:
                continue
            probe = sw.route + (turn,)
            far_id = self._svc.probe_switch_id(probe)
            if far_id is not None:
                plan.feed(turn, True)
                if far_id not in switches:
                    far = _IdSwitch(
                        far_id,
                        probe,
                        {0: ("switch", (sw.sid, turn))},
                        (0, self._radix - 1),
                    )
                    switches[far_id] = far
                    sw.ports[turn] = ("switch", (far_id, 0))
                    frontier.append(far_id)
                else:
                    far = switches[far_id]
                    rel = self._pin(probe, far)
                    if rel is None:
                        self._unresolved += 1
                    else:
                        sw.ports[turn] = ("switch", (far_id, rel))
                        far.ports.setdefault(rel, ("switch", (sw.sid, turn)))
                continue
            host = self._svc.probe_host(probe)
            plan.feed(turn, host is not None)
            if host is not None:
                sw.ports[turn] = ("host", host)
        sw.window = plan.entry_port_window

    def _pin(self, route: Turns, far: _IdSwitch) -> int | None:
        """One X-sweep against the (single, known) far switch's route.

        Probe ``route + (X,) + reverse(far.route)`` loops back iff turn X
        steps from this wire's entry port onto the far route's entry port,
        i.e. the wire enters ``far`` at relative index ``-X``.
        """
        retrace = reverse_turns(far.route)
        lo, hi = far.window
        for x in itertools.chain(
            (0,), (s * m for m in range(1, self._radix) for s in (1, -1))
        ):
            if not (-hi <= -x <= (self._radix - 1) - lo):
                continue
            if -x in far.ports:
                continue  # that far port is already known to hold another wire
            self._pin_probes += 1
            if self._svc.probe_loopback(route + (x,) + retrace):
                return -x
        return None

    # ------------------------------------------------------------------
    def _build(self, switches: dict[str, _IdSwitch]) -> Network:
        net = Network(default_radix=self._radix)
        names = {sid: f"switch-{i}" for i, sid in enumerate(sorted(switches))}
        offsets: dict[str, int] = {}
        for sid, sw in switches.items():
            used = sorted(sw.ports)
            lo = used[0] if used else 0
            hi = used[-1] if used else 0
            if hi - lo >= self._radix:
                raise MappingError("port span exceeds radix")
            offsets[sid] = -lo
            net.add_switch(names[sid], radix=self._radix)
        hosts = {
            payload
            for sw in switches.values()
            for kind, payload in sw.ports.values()
            if kind == "host"
        }
        for h in sorted(hosts):  # type: ignore[arg-type]
            net.add_host(h)
        seen: set[frozenset] = set()
        for sid, sw in switches.items():
            for rel, (kind, payload) in sw.ports.items():
                a = (names[sid], rel + offsets[sid])
                if kind == "host":
                    b = (payload, 0)
                else:
                    far_sid, far_rel = payload
                    b = (names[far_sid], far_rel + offsets[far_sid])
                key = frozenset((a, b))
                if key in seen:
                    continue
                seen.add(key)
                net.connect(a[0], a[1], b[0], b[1])
        return net
