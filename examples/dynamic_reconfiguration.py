#!/usr/bin/env python3
"""Dynamic reconfiguration: the motivating scenario of the abstract.

"Because of their core role, these networks should be dynamically
reconfigurable, automatically adapting to the addition or removal of hosts,
switches and links." This example plays an operations timeline on
subcluster C and re-runs the map/route cycle after each change:

- a cable fails and is removed (the Figure 4 irregularity re-enacted);
- a new switch and five new hosts are added on spare ports;
- a host is removed.

After every event the mapper rediscovers the current truth from probes
alone and the routing layer recomputes deadlock-free routes for whatever
the network now looks like — no static topology assumptions anywhere.

Run:  python examples/dynamic_reconfiguration.py
"""

from repro import (
    build_service_stack,
    all_pairs_updown_paths,
    build_subcluster,
    compile_route_tables,
    core_network,
    create_mapper,
    match_networks,
    orient_updown,
    recommended_search_depth,
    routes_deadlock_free,
)


def remap(actual, mapper_host: str, event: str) -> None:
    depth = recommended_search_depth(actual, mapper_host)
    svc = build_service_stack(actual, mapper_host)
    result = create_mapper(
        "berkeley", svc, search_depth=depth, host_first=False
    ).map()
    report = match_networks(result.network, core_network(actual))
    orientation = orient_updown(result.network)
    paths = all_pairs_updown_paths(result.network, orientation)
    tables = compile_route_tables(result.network, paths, orientation=orientation)
    n_routes = sum(len(t) for t in tables.values())
    print(
        f"[{event}] {actual.n_hosts} hosts / {actual.n_switches} switches / "
        f"{actual.n_wires} links -> map {'OK' if report else 'MISMATCH'}, "
        f"{result.stats.total_probes} probes, {n_routes} routes, "
        f"deadlock-free={routes_deadlock_free(tables)}"
    )
    assert report and routes_deadlock_free(tables)


def main() -> None:
    actual = build_subcluster("C")
    mapper_host = "C-svc"
    remap(actual, mapper_host, "initial deployment")

    # --- a cable fails and the operator pulls it -------------------------
    victim = next(
        w
        for w in actual.wires_of("C-l2-1")
        if actual.is_switch(w.other_end(w.a if w.a.node == "C-l2-1" else w.b).node)
    )
    actual.disconnect(victim)
    remap(actual, mapper_host, f"cable {victim} removed")

    # --- capacity expansion: a new leaf switch with five new hosts -------
    actual.add_switch("C-leaf-new", level="leaf")
    for uplink in ("C-l2-0", "C-l2-3"):
        free_leaf = actual.free_ports("C-leaf-new")[-1]
        free_l2 = actual.free_ports(uplink)[0]
        actual.connect("C-leaf-new", free_leaf, uplink, free_l2)
    for i in range(5):
        name = f"C-n{35 + i:02d}"
        actual.add_host(name)
        actual.connect(name, 0, "C-leaf-new", i)
    remap(actual, mapper_host, "new leaf switch + 5 hosts added")

    # --- a workstation is decommissioned ---------------------------------
    actual.remove_node("C-n00")
    remap(actual, mapper_host, "host C-n00 removed")

    print("\nevery reconfiguration was rediscovered from probes alone.")


if __name__ == "__main__":
    main()
