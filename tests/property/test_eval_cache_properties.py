"""Equivalence property: the prefix-trie evaluator is invisible.

The `IncrementalPathEvaluator` behind `QuiescentProbeService(use_cache=True)`
is a pure optimisation — for any topology, collision model, fault model,
jitter seed and probe sequence, the cached service must produce
**byte-identical** observables to the `use_cache=False` escape hatch: every
probe return value, every `ProbeRecord` in the trace (costs included), and
the final `ProbeStats` counters. That includes runs where faults are
injected, cables are cut, and the responder set changes mid-sequence — the
epoch counters on `Network`/`FaultModel` must invalidate exactly enough.

The three tests together run ≥200 randomized cases (120 + 50 + 40).
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.simulator.collision import CircuitModel, CutThroughModel, PacketModel
from repro.simulator.faults import FaultModel
from repro.simulator.quiescent import QuiescentProbeService
from repro.simulator.stack import StatsLayer, build_service_stack
from repro.topology.generators import random_san
from repro.topology.model import TopologyError

network_params = st.fixed_dictionaries(
    {
        "n_switches": st.integers(min_value=1, max_value=5),
        "n_hosts": st.integers(min_value=2, max_value=5),
        "extra_links": st.integers(min_value=0, max_value=3),
        "parallel_link_prob": st.sampled_from([0.0, 0.5]),
        "seed": st.integers(min_value=0, max_value=10_000),
    }
)

_turns = st.lists(
    st.integers(min_value=-3, max_value=3).filter(bool), min_size=1, max_size=6
).map(tuple)
_loop_turns = st.lists(
    st.integers(min_value=-3, max_value=3), min_size=1, max_size=6
).map(tuple)

#: One step of a probe plan: a probe, or a mid-run reconfiguration.
_probe_ops = st.one_of(
    st.tuples(st.just("host"), _turns),
    st.tuples(st.just("switch"), _turns),
    st.tuples(st.just("loopback"), _loop_turns),
)
_mutating_ops = st.one_of(
    _probe_ops,
    st.tuples(st.just("faults"), st.integers(min_value=0, max_value=10_000)),
    st.tuples(st.just("responders"), st.integers(min_value=0, max_value=10_000)),
    st.tuples(st.just("cut_wire"), st.integers(min_value=0, max_value=10_000)),
    st.tuples(st.just("plug_wire"), st.integers(min_value=0, max_value=10_000)),
)

_collisions = st.sampled_from(
    [CircuitModel(), CutThroughModel(slack_hops=2), PacketModel()]
)

_SETTINGS = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


def _services(params, collision, *, drop, corrupt, jitter, seed):
    """The cached service and its escape-hatch twin, identically configured.

    Both share one Network object (so a topology cut hits both) but carry
    their *own* FaultModel — the models draw from private RNGs whose states
    must advance in lockstep if and only if the two arms make identical
    decisions, which is exactly the property under test.
    """
    try:
        net = random_san(**params)
    except TopologyError:
        return None
    mapper = sorted(net.hosts)[0]

    def build(use_cache: bool) -> QuiescentProbeService:
        # Built through the stack factory with an explicit StatsLayer so
        # the equivalence proof covers the stacked construction path too.
        return build_service_stack(
            net,
            mapper,
            layers=(StatsLayer(keep_trace=True),),
            collision=collision,
            faults=FaultModel(drop_prob=drop, corrupt_prob=corrupt, seed=seed),
            jitter=jitter,
            seed=seed,
            use_cache=use_cache,
        )

    return build(True), build(False)


def _apply(op, payload, cached, pure) -> None:
    """Run one plan step on both services, asserting identical observables."""
    net = cached.net
    if op == "host":
        assert cached.probe_host(payload) == pure.probe_host(payload)
    elif op == "switch":
        assert cached.probe_switch(payload) == pure.probe_switch(payload)
    elif op == "loopback":
        assert cached.probe_loopback(payload) == pure.probe_loopback(payload)
    elif op == "faults":
        wires = net.wires
        rnd = random.Random(payload)
        dead = (
            [frozenset((w.a, w.b)) for w in rnd.sample(wires, 1)] if wires else []
        )
        cached.faults.set_dead_wires(dead)
        pure.faults.set_dead_wires(dead)
    elif op == "responders":
        hosts = sorted(net.hosts)
        rnd = random.Random(payload)
        subset = frozenset(rnd.sample(hosts, rnd.randint(0, len(hosts))))
        cached.responders = subset
        pure.responders = subset
    elif op == "cut_wire":
        wires = net.wires
        if wires:
            net.disconnect(random.Random(payload).choice(wires))
    elif op == "plug_wire":
        # Added connectivity invalidates cached *absences* (memoized
        # NO_SUCH_WIRE walks) — the surgical path must drop exactly those.
        free = [
            (name, port)
            for name in sorted(net.switches)
            for port in net.free_ports(name)
        ]
        pairs = [(a, b) for a in free for b in free if a[0] != b[0]]
        if pairs:
            (an, ap), (bn, bp) = random.Random(payload).choice(pairs)
            try:
                net.connect(an, ap, bn, bp)
            except TopologyError:
                pass
    else:  # pragma: no cover - strategy restricts ops
        raise AssertionError(op)


def _assert_stats_identical(cached, pure) -> None:
    a, b = cached.stats, pure.stats
    assert (a.host_probes, a.host_hits) == (b.host_probes, b.host_hits)
    assert (a.switch_probes, a.switch_hits) == (b.switch_probes, b.switch_hits)
    # Byte-identical, not approximately equal: both arms must charge the
    # exact same float costs in the exact same order.
    assert a.elapsed_us == b.elapsed_us  # noqa: timing equality is the point
    assert a.trace == b.trace


class TestCacheEquivalence:
    @given(
        params=network_params,
        collision=_collisions,
        plan=st.lists(_mutating_ops, min_size=5, max_size=30),
        jitter=st.sampled_from([0.0, 0.2]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=120, **_SETTINGS)
    def test_mixed_plans_byte_identical(self, params, collision, plan, jitter, seed):
        """Probes interleaved with fault injection, cable cuts and
        responder churn: the cache may never change an observable."""
        pair = _services(
            params, collision, drop=0.0, corrupt=0.0, jitter=jitter, seed=seed
        )
        if pair is None:
            return
        cached, pure = pair
        for op, payload in plan:
            _apply(op, payload, cached, pure)
        _assert_stats_identical(cached, pure)
        stats = cached.eval_cache_stats
        assert stats is not None and pure.eval_cache_stats is None
        # hits/misses count per-node trie steps, evaluations count probe
        # walks: both only ever grow, and the rate stays a valid fraction.
        assert stats.hits >= 0 and stats.misses >= 0
        assert 0.0 <= stats.hit_rate <= 1.0
        if any(op in ("host", "switch", "loopback") for op, _ in plan):
            assert stats.evaluations > 0

    @given(
        params=network_params,
        collision=_collisions,
        plan=st.lists(_probe_ops, min_size=10, max_size=30),
        drop=st.sampled_from([0.1, 0.5]),
        corrupt=st.sampled_from([0.0, 0.3]),
        fault_at=st.integers(min_value=0, max_value=9),
        fault_seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=50, **_SETTINGS)
    def test_stochastic_faults_and_midrun_dead_wire(
        self, params, collision, plan, drop, corrupt, fault_at, fault_seed
    ):
        """Drop/corrupt RNGs must advance in lockstep across the two arms,
        through a dead-wire injection mid-sequence."""
        pair = _services(
            params, collision, drop=drop, corrupt=corrupt, jitter=0.0, seed=7
        )
        if pair is None:
            return
        cached, pure = pair
        for i, (op, payload) in enumerate(plan):
            if i == fault_at:
                _apply("faults", fault_seed, cached, pure)
            _apply(op, payload, cached, pure)
        _assert_stats_identical(cached, pure)

    @given(
        params=network_params,
        plan=st.lists(_probe_ops, min_size=8, max_size=20),
        responders_at=st.integers(min_value=0, max_value=7),
        responder_seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, **_SETTINGS)
    def test_responder_set_changes_midrun(
        self, params, plan, responders_at, responder_seed
    ):
        """Shrinking/growing the responder set mid-run flips host-probe
        outcomes without touching path evaluation — the cached walk state
        must stay valid across the change."""
        pair = _services(
            params, CircuitModel(), drop=0.0, corrupt=0.0, jitter=0.0, seed=3
        )
        if pair is None:
            return
        cached, pure = pair
        for i, (op, payload) in enumerate(plan):
            if i == responders_at:
                _apply("responders", responder_seed, cached, pure)
            _apply(op, payload, cached, pure)
        _assert_stats_identical(cached, pure)
