"""Property-based tests for the routing subsystem invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.routing.compile_routes import compile_route_tables
from repro.routing.deadlock import routes_deadlock_free
from repro.routing.paths import (
    all_pairs_updown_paths,
    bfs_updown_lengths,
    build_phase_graph,
)
from repro.routing.updown import orient_updown
from repro.simulator.path_eval import PathStatus, evaluate_route
from repro.topology.generators import random_san
from repro.topology.model import TopologyError

network_params = st.fixed_dictionaries(
    {
        "n_switches": st.integers(min_value=1, max_value=7),
        "n_hosts": st.integers(min_value=2, max_value=7),
        "extra_links": st.integers(min_value=0, max_value=4),
        "parallel_link_prob": st.sampled_from([0.0, 0.4]),
        "seed": st.integers(min_value=0, max_value=10_000),
    }
)

_SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _pipeline(net):
    ori = orient_updown(net)
    paths = all_pairs_updown_paths(net, ori)
    tables = compile_route_tables(net, paths, orientation=ori)
    return ori, paths, tables


def _try_san(**params):
    try:
        return random_san(**params)
    except TopologyError:
        return None


class TestUpDownInvariants:
    @given(params=network_params)
    @settings(**_SETTINGS)
    def test_every_host_pair_routed(self, params):
        """UP*/DOWN* is connectivity-complete on connected networks: the
        up-phase can always climb to the root and descend anywhere."""
        net = _try_san(**params)
        if net is None:
            return
        _, _, tables = _pipeline(net)
        hosts = sorted(net.hosts)
        for src in hosts:
            for dst in hosts:
                if src != dst:
                    assert dst in tables[src].routes, (src, dst, params)

    @given(params=network_params)
    @settings(**_SETTINGS)
    def test_routes_always_deadlock_free(self, params):
        net = _try_san(**params)
        if net is None:
            return
        _, _, tables = _pipeline(net)
        assert routes_deadlock_free(tables), params

    @given(params=network_params)
    @settings(**_SETTINGS)
    def test_compiled_turns_deliver(self, params):
        net = _try_san(**params)
        if net is None:
            return
        _, _, tables = _pipeline(net)
        for table in tables.values():
            for dst, route in table.routes.items():
                outcome = evaluate_route(net, table.host, route.turns)
                assert outcome.status is PathStatus.DELIVERED, (params, route)
                assert outcome.delivered_to == dst

    @given(params=network_params)
    @settings(**_SETTINGS)
    def test_fw_agrees_with_bfs(self, params):
        net = _try_san(**params)
        if net is None:
            return
        ori = orient_updown(net)
        graph = build_phase_graph(net, ori)
        paths = all_pairs_updown_paths(net, ori, graph=graph)
        src = sorted(net.hosts)[0]
        bfs = bfs_updown_lengths(net, ori, src, graph=graph)
        for dst in sorted(net.nodes):
            assert paths.distance(src, dst) == bfs.get(dst), (params, dst)

    @given(params=network_params)
    @settings(**_SETTINGS)
    def test_no_route_turns_down_then_up(self, params):
        net = _try_san(**params)
        if net is None:
            return
        ori, paths, _ = _pipeline(net)
        hosts = sorted(net.hosts)
        for src in hosts[:3]:
            for dst in hosts[:3]:
                if src == dst:
                    continue
                p = paths.node_path(src, dst)
                went_down = False
                for u, v in zip(p, p[1:]):
                    if ori.is_up(u, v):
                        assert not went_down, (params, p)
                    else:
                        went_down = True
