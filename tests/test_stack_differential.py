"""Differential proof that the middleware stack preserved legacy behavior.

``tests/goldens/legacy_service_stack.json`` was captured by running the
five *pre-refactor* wrapper classes (``_ElectionProbeService``/``_Capped``,
``_ConcurrentProbeService``, ``ChaosProbeService``,
``CrossTrafficProbeService``/``RetryingProbeService``) on fixed seeds.
These tests re-run the exact same drivers through the composed layer
stacks and assert byte-identical observables — same RNG draw order, same
probe counts, same float timings, same yield schedules. Any drift in the
engine's transaction order or a layer's hook placement fails loudly here.

(The chaos side of the same proof is ``tests/chaos/test_corpus.py``: the
committed 60-cell corpus must replay digest-for-digest through
``ChaosLayer``.)
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.core.concurrent_mapping import run_concurrent_mappers
from repro.core.election import _rival_schedule, election_run
from repro.extensions.crosstraffic import crosstraffic_study
from repro.simulator.collision import CircuitModel
from repro.simulator.timing import MYRINET_TIMING
from repro.topology.analysis import recommended_search_depth
from repro.topology.generators import build_ring, build_subcluster

GOLDEN = json.loads(
    (Path(__file__).parent / "goldens" / "legacy_service_stack.json").read_text()
)


@pytest.fixture(scope="module")
def subcluster_c():
    net = build_subcluster("C")
    return net, recommended_search_depth(net, "C-svc")


@pytest.mark.parametrize("seed", [0, 7])
def test_election_byte_identical_to_legacy_wrappers(subcluster_c, seed):
    net, depth = subcluster_c
    out = election_run(net, search_depth=depth, seed=seed)
    want = GOLDEN[f"election_s{seed}"]
    assert out.winner == want["winner"]
    assert out.elapsed_ms == want["elapsed_ms"]
    assert out.anchor_misses == want["anchor_misses"]
    assert out.hosts_mapped == want["hosts_mapped"]
    assert out.map_result.stats.total_probes == want["probes"]
    assert out.yield_times_ms == want["yield_times_ms"]


def test_rival_schedule_digest_matches_capped_wrapper(subcluster_c):
    net, depth = subcluster_c
    sched = _rival_schedule(
        net,
        "C-n04",
        search_depth=depth,
        collision=CircuitModel(),
        timing=MYRINET_TIMING,
        cap=600,
    )
    want = GOLDEN["rival_schedule_C-n04"]
    assert len(sched) == want["n_events"]
    digest = hashlib.sha256(json.dumps(sched).encode()).hexdigest()[:16]
    assert digest == want["digest"]


@pytest.mark.parametrize("yield_rule", [False, True])
def test_concurrent_mapping_byte_identical_to_legacy_wrapper(yield_rule):
    ring = build_ring(6, hosts_per_switch=1)
    hosts = sorted(ring.hosts)[:3]
    depth = recommended_search_depth(ring, hosts[0])
    out = run_concurrent_mappers(
        ring, hosts, search_depth=depth, yield_rule=yield_rule
    )
    want = GOLDEN[f"concurrent_yield{yield_rule}"]
    assert out.elapsed_us == want["elapsed_us"]
    assert out.total_collisions == want["total_collisions"]
    got = {
        h: {
            "finished_at_us": o.finished_at_us,
            "lost": o.probes_lost_to_contention,
            "yielded": o.yielded,
            "hosts": o.result.network.n_hosts if o.result else None,
            "probes": o.result.stats.total_probes if o.result else None,
        }
        for h, o in sorted(out.mappers.items())
    }
    assert got == want["mappers"]


def test_crosstraffic_study_byte_identical_to_legacy_wrappers(subcluster_c):
    net, depth = subcluster_c
    pts = crosstraffic_study(
        net,
        "C-svc",
        search_depth=depth,
        rates=(0.0, 2.0, 5.0),
        retries=(0, 2),
        seed=3,
    )
    got = [
        {
            "rate": p.rate_msgs_per_ms,
            "retries": p.retries,
            "correct": p.correct,
            "hosts": p.hosts_found,
            "switches": p.switches_found,
            "wires": p.wires_found,
            "probes": p.probes,
            "lost": p.probes_lost,
            "elapsed_ms": p.elapsed_ms,
        }
        for p in pts
    ]
    assert got == GOLDEN["crosstraffic"]
