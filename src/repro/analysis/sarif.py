"""SARIF 2.1.0 output for sanlint, for GitHub code-scanning upload.

One run, one tool (``sanlint``), one result per diagnostic. Rule
metadata (title, rationale, default hint) rides along in the driver's
rule descriptors so the code-scanning UI can show the *why* next to each
alert. Paths are emitted repo-relative with POSIX separators when they
live under the current working directory, as the upload action expects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import all_rule_ids, get_rule

__all__ = ["to_sarif", "render_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _relative_uri(path: str) -> str:
    p = Path(path)
    try:
        p = p.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        pass  # outside the repo: keep as given
    return p.as_posix()


def _rule_descriptor(rule_id: str) -> dict[str, Any]:
    rule = get_rule(rule_id)
    return {
        "id": rule_id,
        "name": rule.__name__,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.rationale},
        "help": {"text": rule.hint},
        "defaultConfiguration": {"level": "error"},
    }


def to_sarif(diagnostics: Sequence[Diagnostic]) -> dict[str, Any]:
    """The SARIF log as a plain dict (``render_sarif`` serializes it)."""
    results = []
    for d in diagnostics:
        message = d.message if d.hint is None else f"{d.message} (hint: {d.hint})"
        results.append(
            {
                "ruleId": d.rule_id,
                "level": "error",
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": _relative_uri(d.path),
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {
                                "startLine": max(d.line, 1),
                                "startColumn": d.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    # SAN000 parse failures have no registered rule class; list only real
    # rules in the driver and let their results reference the id bare.
    descriptors = [_rule_descriptor(rid) for rid in all_rule_ids()]
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "sanlint",
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(diagnostics: Sequence[Diagnostic]) -> str:
    return json.dumps(to_sarif(diagnostics), indent=2, sort_keys=True)
