"""Figure 3 — subcluster component counts (topology generation bench)."""

from repro.experiments import fig3_components


def test_fig3_components(once, benchmark):
    rows = once(fig3_components.run)
    assert all(r.matches_paper for r in rows)
    benchmark.extra_info["rows"] = [
        (r.subcluster, r.interfaces, r.switches, r.links) for r in rows
    ]
