"""Figure 9 — map time vs number of hosts running a mapper daemon."""

from repro.experiments import fig9_responders


def test_fig9_responder_speedup(once, benchmark):
    points = once(
        fig9_responders.run,
        "C+A+B",
        counts=(1, 5, 15, 20, 40, 70, 100),
        max_explorations=1200,
    )
    seq = {p.n_responders: p for p in points if p.placement == "sequential"}
    rnd = {p.n_responders: p for p in points if p.placement == "random"}

    # The paper's headline: ~8x speedup from 1 to 100 responders.
    speedup = seq[1].elapsed_ms / seq[100].elapsed_ms
    assert 4.0 <= speedup <= 16.0

    # "After 15 randomly-placed mappers ... within a factor of 2 of its
    # minimum, and after 20 the time is within a factor of 1.5."
    minimum = min(p.elapsed_ms for p in points)
    assert rnd[15].elapsed_ms <= 2.0 * minimum
    assert rnd[20].elapsed_ms <= 1.6 * minimum

    # Sequential fill shows the step discontinuities: adding hosts inside
    # already-covered subclusters helps far less than the first host of a
    # new one.
    assert seq[40].elapsed_ms < 0.5 * seq[15].elapsed_ms

    benchmark.extra_info["speedup_1_to_100"] = round(speedup, 1)
    benchmark.extra_info["paper_speedup"] = 8.0
