"""Property tests for the map-diff module.

The remapping daemon's change detector must (a) never fire on identical
maps up to renaming/offsets, and (b) always fire when hosts actually came,
went, or moved — across random topologies and mutations.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.topology.diff import diff_networks
from repro.topology.generators import random_san
from repro.topology.model import TopologyError

_SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

params = st.fixed_dictionaries(
    {
        "n_switches": st.integers(min_value=2, max_value=6),
        "n_hosts": st.integers(min_value=2, max_value=6),
        "extra_links": st.integers(min_value=0, max_value=3),
        "seed": st.integers(min_value=0, max_value=5000),
    }
)


def _try_san(**kw):
    try:
        return random_san(**kw)
    except TopologyError:
        return None


class TestDiffProperties:
    @given(p=params)
    @settings(**_SETTINGS)
    def test_self_diff_is_identical(self, p):
        net = _try_san(**p)
        if net is None:
            return
        d = diff_networks(net, net.copy())
        assert d.identical
        assert not d.routes_stale

    @given(p=params, victim_idx=st.integers(min_value=0, max_value=10))
    @settings(**_SETTINGS)
    def test_host_removal_always_detected(self, p, victim_idx):
        net = _try_san(**p)
        if net is None or net.n_hosts < 3:
            return
        mutated = net.copy()
        hosts = sorted(mutated.hosts)
        victim = hosts[victim_idx % len(hosts)]
        mutated.remove_node(victim)
        d = diff_networks(net, mutated)
        assert not d.identical
        assert victim in d.hosts_removed
        assert d.routes_stale

    @given(p=params)
    @settings(**_SETTINGS)
    def test_host_addition_always_detected(self, p):
        net = _try_san(**p)
        if net is None:
            return
        mutated = net.copy()
        anchors = [s for s in mutated.switches if mutated.free_ports(s)]
        if not anchors:
            return
        mutated.add_host("brand-new")
        sw = sorted(anchors)[0]
        mutated.connect("brand-new", 0, sw, mutated.free_ports(sw)[0])
        d = diff_networks(net, mutated)
        assert d.hosts_added == ["brand-new"]

    @given(p=params, seed2=st.integers(min_value=0, max_value=5000))
    @settings(**_SETTINGS)
    def test_diff_symmetry_of_identity(self, p, seed2):
        """identical(a, b) == identical(b, a)."""
        a = _try_san(**p)
        b = _try_san(**{**p, "seed": seed2})
        if a is None or b is None:
            return
        assert diff_networks(a, b).identical == diff_networks(b, a).identical
