"""The Myricom Algorithm (Section 4 of the paper).

"The Myricom Algorithm performs a breadth-first exploration of the network
... While switches remain on their frontier queue, it pops off each one and
explores it. ... The Myricom Algorithm uses relative switch port addressing
and a generalization of loopback probe messages to test if the current
switch (the one just popped off the frontier queue) has been explored. ...
To test if A is B, the Myricom Algorithm sends probes of the form
``T1...Tn X -Sm...-S1`` where X spans any single turn."

Where the Berkeley Algorithm discovers replicates *lazily* (structural
deductions propagating backwards from hosts), the Myricom Algorithm is
*eager*: every frontier candidate is compared, with O(N) probes, against
every already-explored switch before being explored itself — O(N²) messages
with a large constant (Section 4.2).

Implementation notes (faithful to the text, with two documented choices):

- the paper's X sweep is the 14 turns ``{-7..-1, +1..+7}``; we additionally
  send ``X = 0``, which covers the case where the candidate's route enters
  the explored switch at exactly its comparison route's entry port (the
  14-turn sweep is blind there);
- the X sweep is pruned with the same sound entry-port-window arithmetic as
  the Berkeley planner ("employs a variety of heuristics to reduce the
  total number of probes"), and explored switches at the candidate's BFS
  depth are compared first so matches exit early;
- the per-category accounting matches Figure 10's columns: ``loop``
  (self-comparison probes, which is what detects loopback cables), ``host``
  and ``sw`` (per-port probes when exploring a new switch), and ``comp``
  (comparisons against other explored switches).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from repro.core.mapper import MapResult, MappingError
from repro.core.mapper_protocol import MapperCapabilities, register_mapper
from repro.core.planner import PortPlan
from repro.simulator.probes import ProbeStats
from repro.simulator.quiescent import QuiescentProbeService
from repro.simulator.turns import Turns, reverse_turns
from repro.topology.model import Network

__all__ = ["MyricomMapper", "MyricomResult", "ProbeBreakdown"]


@dataclass(slots=True)
class ProbeBreakdown:
    """Figure 10's probe categories."""

    loop: int = 0
    host: int = 0
    switch: int = 0
    compare: int = 0

    @property
    def total(self) -> int:
        return self.loop + self.host + self.switch + self.compare


@dataclass(slots=True)
class MyricomResult:
    """Output of a Myricom Algorithm run."""

    network: Network
    breakdown: ProbeBreakdown
    stats: ProbeStats
    mapper_host: str
    candidates_popped: int
    switches_explored: int

    @property
    def elapsed_ms(self) -> float:
        return self.stats.elapsed_ms


class _Switch:
    """An explored switch: its route and relative-port knowledge."""

    __slots__ = ("sid", "route", "ports", "window")

    def __init__(self, sid: int, route: Turns, radix: int) -> None:
        self.sid = sid
        self.route = route  # brings a worm into this switch
        #: relative index (port - entry port) -> ("host", name) | ("switch", sid)
        self.ports: dict[int, tuple[str, object]] = {}
        #: feasible absolute entry ports, narrowed by hits (planner window)
        self.window: tuple[int, int] = (0, radix - 1)

    @property
    def depth(self) -> int:
        return len(self.route)


@dataclass(slots=True)
class _Candidate:
    route: Turns  # route into the candidate switch
    parent: _Switch
    parent_turn: int


@register_mapper(
    "myricom",
    summary="eager O(N²) compare-all baseline (Section 4)",
)
class MyricomMapper:
    """Drive the Myricom Algorithm against a probe service.

    Requires a service with the raw ``probe_loopback`` facility
    (:class:`~repro.simulator.quiescent.QuiescentProbeService` provides it).
    """

    capabilities = MapperCapabilities()

    def __init__(
        self,
        service: QuiescentProbeService,
        *,
        search_depth: int,
        radix: int = 8,
    ) -> None:
        if search_depth < 1:
            raise ValueError("search_depth must be at least 1")
        self._svc = service
        self._depth = search_depth
        self._radix = radix
        self._ids = itertools.count()
        self._explored: list[_Switch] = []
        self._hosts: dict[str, tuple[_Switch, int]] = {}
        self._breakdown = ProbeBreakdown()
        self._pops = 0

    # ------------------------------------------------------------------
    def run(self) -> MyricomResult:
        root = _Switch(next(self._ids), (), self._radix)
        self._explored.append(root)
        frontier: deque[_Candidate] = deque()
        self._explore(root, frontier)
        while frontier:
            cand = frontier.popleft()
            self._pops += 1
            match = self._identify(cand)
            if match is not None:
                switch, rel = match
                self._record_wire(cand.parent, cand.parent_turn, switch, rel)
                continue
            new = _Switch(next(self._ids), cand.route, self._radix)
            self._explored.append(new)
            self._record_wire(cand.parent, cand.parent_turn, new, 0)
            if new.depth < self._depth:
                self._explore(new, frontier)
        network = self._build_network()
        return MyricomResult(
            network=network,
            breakdown=self._breakdown,
            stats=self._svc.stats.snapshot(),
            mapper_host=self._svc.mapper_host,
            candidates_popped=self._pops,
            switches_explored=len(self._explored),
        )

    def map(self) -> MapResult:
        """Protocol entry point: run and repackage as a ``MapResult``.

        ``run`` keeps the algorithm's native :class:`MyricomResult` (the
        Figure 10 probe breakdown); ``map`` flattens it into the common
        shape every driver understands. Eager identification means each
        explored switch is final — explorations and peak model size are
        both the explored-switch count, and nothing ever merges.
        """
        result = self.run()
        return MapResult(
            network=result.network,
            stats=result.stats,
            mapper_host=result.mapper_host,
            search_depth=self._depth,
            explorations=result.switches_explored,
            merges=0,
            peak_model_nodes=result.switches_explored,
        )

    # ------------------------------------------------------------------
    # exploration of a confirmed-new switch
    # ------------------------------------------------------------------
    def _explore(self, sw: _Switch, frontier: deque[_Candidate]) -> None:
        plan = PortPlan(radix=self._radix)
        if sw.sid == 0:
            # The root switch is entered over the mapper's own wire.
            self._hosts[self._svc.mapper_host] = (sw, 0)
            sw.ports[0] = ("host", self._svc.mapper_host)
        while (turn := plan.next_turn()) is not None:
            route = sw.route + (turn,)
            host = self._svc.probe_host(route)
            self._breakdown.host += 1
            if host is not None:
                plan.feed(turn, True)
                if host in self._hosts:
                    raise MappingError(
                        f"host {host} appeared on two switch ports; "
                        "violates the single-attachment assumption"
                    )
                self._hosts[host] = (sw, turn)
                sw.ports[turn] = ("host", host)
                continue
            self._breakdown.switch += 1
            if self._svc.probe_switch(route):
                plan.feed(turn, True)
                frontier.append(_Candidate(route, sw, turn))
            else:
                plan.feed(turn, False)
        sw.window = plan.entry_port_window

    # ------------------------------------------------------------------
    # eager replicate identification (the comparison probes)
    # ------------------------------------------------------------------
    def _identify(self, cand: _Candidate) -> tuple[_Switch, int] | None:
        """Compare the candidate against explored switches; None = new.

        The self-comparison against the candidate's parent runs first and is
        counted in the ``loop`` category (it is what detects loopback
        cables); remaining switches are ordered by BFS-depth proximity.
        """
        others = [s for s in self._explored if s is not cand.parent]
        others.sort(key=lambda s: (abs(s.depth - len(cand.route)), s.sid))
        for category, sw in [("loop", cand.parent)] + [("comp", s) for s in others]:
            rel = self._compare(cand.route, sw, category)
            if rel is not None:
                return sw, rel
        return None

    def _compare(self, route: Turns, sw: _Switch, category: str) -> int | None:
        """Is the switch at ``route`` the explored ``sw``? Returns the
        relative index at which ``route`` enters ``sw``, else None.

        Probe: ``route + (X,) + reverse(sw.route)``. It loops back to the
        mapper iff the candidate is ``sw`` and turn X moves the worm from
        the candidate's entry port onto ``sw``'s comparison-route entry
        port: the entry's relative index at ``sw`` is then ``-X``.
        """
        retrace = reverse_turns(sw.route)
        lo, hi = sw.window
        for x in self._x_sweep():
            # Sound pruning: entering at relative index -X must be feasible
            # for some absolute entry port q in sw's window: q + (-X) must
            # be a legal port.
            if not (-hi <= -x <= (self._radix - 1) - lo):
                continue
            if category == "loop":
                self._breakdown.loop += 1
            else:
                self._breakdown.compare += 1
            if self._svc.probe_loopback(route + (x,) + retrace):
                return -x
        return None

    def _x_sweep(self):
        """X order: 0 first (same-entry-port case), then outward by size."""
        yield 0
        for mag in range(1, self._radix):
            yield mag
            yield -mag

    # ------------------------------------------------------------------
    # map assembly
    # ------------------------------------------------------------------
    def _record_wire(
        self, parent: _Switch, parent_turn: int, child: _Switch, child_rel: int
    ) -> None:
        existing = parent.ports.get(parent_turn)
        entry = ("switch", (child.sid, child_rel))
        if existing is not None and existing != entry:
            raise MappingError(
                f"switch port resolved to two different far ends: "
                f"{existing} vs {entry}"
            )
        parent.ports[parent_turn] = entry
        back = child.ports.get(child_rel)
        back_entry = ("switch", (parent.sid, parent_turn))
        if back is not None and back != back_entry:
            raise MappingError(
                f"switch port resolved to two different far ends: "
                f"{back} vs {back_entry}"
            )
        child.ports[child_rel] = back_entry

    def _build_network(self) -> Network:
        net = Network(default_radix=self._radix)
        names: dict[int, str] = {}
        offsets: dict[int, int] = {}
        by_sid = {s.sid: s for s in self._explored}
        for sw in self._explored:
            name = f"switch-{sw.sid}"
            names[sw.sid] = name
            used = sorted(sw.ports)
            lo = used[0] if used else 0
            hi = used[-1] if used else 0
            if hi - lo >= self._radix:
                raise MappingError(f"{name} spans more ports than the radix")
            offsets[sw.sid] = -lo
            net.add_switch(name, radix=self._radix)
        for host in self._hosts:
            net.add_host(host)
        seen: set[frozenset] = set()
        for sw in self._explored:
            for rel, (kind, payload) in sw.ports.items():
                port = rel + offsets[sw.sid]
                if kind == "host":
                    end_a = (names[sw.sid], port)
                    end_b = (payload, 0)
                else:
                    far_sid, far_rel = payload  # type: ignore[misc]
                    far = by_sid[far_sid]
                    end_a = (names[sw.sid], port)
                    end_b = (names[far_sid], far_rel + offsets[far_sid])
                key = frozenset((end_a, end_b))
                if key in seen:
                    continue
                seen.add(key)
                net.connect(end_a[0], end_a[1], end_b[0], end_b[1])
        return net
