"""Applying scheduled events to a live ``(Network, FaultModel)`` pair.

The applier is the single writer through which a chaos campaign disturbs the
system under test. It funnels every change through the two existing epoch
counters so the PR-2 evaluation cache invalidates exactly when it must:

- fault-level events (``cut``/``heal``/``kill_*``/``revive_*``/``drop``/
  ``corrupt``) go through the :class:`~repro.simulator.faults.FaultModel`
  mutators, bumping ``fault_epoch``;
- structural events (``unplug``/``plug``) mutate the
  :class:`~repro.topology.model.Network` itself, bumping ``topology_epoch``.

Incoherent events — healing a cable that is not cut, killing a node twice,
plugging an occupied port — raise :class:`ScenarioError` rather than being
silently ignored: the shrinker relies on "this schedule is invalid" being
distinguishable from "this schedule reproduces the failure".
"""

from __future__ import annotations

from typing import Callable

from repro.chaos.scenario import ChaosEvent, ScenarioError
from repro.simulator.faults import FaultModel
from repro.topology.model import Network, PortRef, TopologyError, Wire

__all__ = ["ScenarioApplier"]


def _ends(wire: Wire) -> frozenset[PortRef]:
    return frozenset((wire.a, wire.b))


class ScenarioApplier:
    """Stateful interpreter for :class:`~repro.chaos.scenario.ChaosEvent`.

    Tracks which cables were cut explicitly and which nodes are killed; the
    fault model's dead-wire set is always the union of the two views, so a
    ``plug`` onto a killed switch correctly yields a dead new cable, and a
    ``revive`` resurrects exactly the node's *current* cables.
    """

    def __init__(self, net: Network, faults: FaultModel) -> None:
        self._net = net
        self._faults = faults
        self._cut: set[frozenset[PortRef]] = set(faults.dead_wires)
        self._killed: set[str] = set()
        self._dispatch: dict[str, Callable[..., None]] = {
            "cut": self._cut_cable,
            "heal": self._heal_cable,
            "kill_switch": self._kill,
            "revive_switch": self._revive,
            "kill_host": self._kill,
            "revive_host": self._revive,
            "drop": self._faults.set_drop_prob,
            "corrupt": self._faults.set_corrupt_prob,
            "unplug": self._unplug,
            "plug": self._plug,
        }

    # ------------------------------------------------------------------
    @property
    def killed_nodes(self) -> frozenset[str]:
        return frozenset(self._killed)

    @property
    def cut_cables(self) -> frozenset[frozenset[PortRef]]:
        return frozenset(self._cut)

    def apply(self, event: ChaosEvent) -> None:
        """Apply one event; raises :class:`ScenarioError` on incoherence."""
        try:
            self._dispatch[event.action](*event.args)
        except ScenarioError:
            raise
        except (TopologyError, ValueError) as exc:
            raise ScenarioError(f"cannot apply {event}: {exc}") from exc

    # ------------------------------------------------------------------
    def _wire_at(self, node: str, port: int) -> Wire:
        wire = self._net.wire_at(node, int(port))
        if wire is None:
            raise ScenarioError(f"no cable at {node}:{port}")
        return wire

    def _sync(self) -> None:
        """Recompute the fault model's dead set from cuts + killed nodes."""
        dead = set(self._cut)
        for node in self._killed:
            for wire in self._net.wires_of(node):
                dead.add(_ends(wire))
        self._faults.set_dead_wires(dead)

    def _cut_cable(self, node: str, port: int) -> None:
        ends = _ends(self._wire_at(node, port))
        if ends in self._cut:
            raise ScenarioError(f"cable at {node}:{port} is already cut")
        self._cut.add(ends)
        self._sync()

    def _heal_cable(self, node: str, port: int) -> None:
        ends = _ends(self._wire_at(node, port))
        if ends not in self._cut:
            raise ScenarioError(f"cable at {node}:{port} is not cut")
        self._cut.discard(ends)
        self._sync()

    def _kill(self, name: str) -> None:
        if name not in self._net:
            raise ScenarioError(f"no such node: {name}")
        if name in self._killed:
            raise ScenarioError(f"{name} is already dead")
        self._killed.add(name)
        self._sync()

    def _revive(self, name: str) -> None:
        if name not in self._killed:
            raise ScenarioError(f"{name} is not dead")
        self._killed.discard(name)
        self._sync()

    def _unplug(self, node: str, port: int) -> None:
        wire = self._wire_at(node, port)
        self._net.disconnect(wire)
        # A cable that no longer exists cannot also be "silently dead".
        if _ends(wire) in self._cut:
            self._cut.discard(_ends(wire))
        self._sync()

    def _plug(self, node_a: str, port_a: int, node_b: str, port_b: int) -> None:
        self._net.connect(node_a, int(port_a), node_b, int(port_b))
        # The new cable of a killed node must be dead from birth.
        if node_a in self._killed or node_b in self._killed:
            self._sync()
