"""The quiescent-network probe service: the setting of the proof.

"Recall the assumption that the network is quiescent during mapping and thus
worms can only deadlock on themselves" (Section 2.3.1). Under quiescence a
probe's fate is a pure function of the topology, the collision model and the
fault model, so the service evaluates probes analytically and charges the
timing model for each — no event queue needed. (Concurrent scenarios —
election mode, cross-traffic — use :mod:`repro.simulator.occupancy`.)

Host-probe semantics beyond path evaluation:

- the terminal host must be running a mapper daemon (active or passive) to
  reply — hosts without one silently eat the probe (this is the Figure 9
  mechanism: absent responders turn would-be hits into expensive timeouts);
- the reply retraces the probe path in reverse; under quiescence it cannot
  collide with anything (the probe worm is gone by then).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.simulator.collision import CircuitModel, CollisionModel
from repro.simulator.faults import NO_FAULTS, FaultModel
from repro.simulator.path_eval import (
    EvalCacheStats,
    IncrementalPathEvaluator,
    PathResult,
    PathStatus,
    ProbeInfo,
    evaluate_route,
)
from repro.simulator.probes import ProbeKind, ProbeRecord, ProbeStats
from repro.simulator.timing import MYRINET_TIMING, TimingModel
from repro.simulator.turns import Turns, switch_probe_turns, validate_turns
from repro.topology.model import Network

__all__ = ["QuiescentProbeService"]


@dataclass
class QuiescentProbeService:
    """Evaluate probes against a quiescent network.

    Parameters
    ----------
    net:
        The actual network ``N`` (never exposed to the mapper).
    mapper:
        The host injecting probes (``h0``).
    collision:
        Self-collision model; the proof's two cases are
        :class:`~repro.simulator.collision.CircuitModel` and
        :class:`~repro.simulator.collision.CutThroughModel`.
    timing:
        Cost model; probe costs accumulate in ``stats.elapsed_us``.
    responders:
        Hosts that answer host-probes. ``None`` means every host.
    faults:
        Optional loss/corruption/dead-wire injection.
    """

    net: Network
    mapper: str
    collision: CollisionModel = field(default_factory=CircuitModel)
    timing: TimingModel = MYRINET_TIMING
    responders: frozenset[str] | None = None
    faults: FaultModel = field(default_factory=FaultModel)
    keep_trace: bool = False
    #: Multiplicative software-time jitter: each probe's cost is scaled by a
    #: uniform factor in [1 - jitter, 1 + jitter]. Models OS scheduling and
    #: SBUS contention noise — the source of the paper's min/avg/max spread
    #: in Figure 7. Zero disables it (fully deterministic timing).
    jitter: float = 0.0
    seed: int = 0
    #: Escape hatch: set False to re-walk every probe via the pure
    #: :func:`evaluate_route` (used by the equivalence tests and the
    #: cache-off benchmark arm).
    use_cache: bool = True

    def __post_init__(self) -> None:
        if not self.net.is_host(self.mapper):
            raise ValueError(f"mapper {self.mapper} is not a host")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self._stats = ProbeStats(trace=[] if self.keep_trace else None)
        # Turn-alphabet radius: Myrinet encodes {-7..+7}; wider fabrics
        # need wider routing flits, so derive the limit from the hardware.
        self._turn_limit = max(
            (self.net.radix(s) - 1 for s in self.net.switches), default=7
        )
        self._rng = random.Random(self.seed)
        self._evaluator = (
            IncrementalPathEvaluator(self.net, faults=self.faults)
            if self.use_cache
            else None
        )

    def _jittered(self, cost: float) -> float:
        if not self.jitter:
            return cost
        return cost * self._rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)

    # -- ProbeService ----------------------------------------------------
    @property
    def mapper_host(self) -> str:
        return self.mapper

    @property
    def stats(self) -> ProbeStats:
        return self._stats

    def probe_host(self, turns: Turns) -> str | None:
        turns = validate_turns(turns, limit=self._turn_limit)
        info = self._probe_info(turns)
        hit = False
        responder: str | None = None
        if info.ok and info.blocked is None:
            if not self.faults.kills_traversals(info.traversals):
                target = info.delivered_to
                assert target is not None
                if self._responds(target):
                    hit = True
                    responder = target
        cost = self._jittered(
            self.timing.probe_response_us(info.hops, info.hops)
            if hit
            else self.timing.probe_timeout_us()
        )
        self._stats.record(
            ProbeRecord(ProbeKind.HOST, turns, hit, cost, responder)
        )
        return responder

    def probe_switch(self, turns: Turns) -> bool:
        turns = validate_turns(turns, limit=self._turn_limit)
        info = self._loopback_info(turns)
        hit = False
        if info.ok:
            # By construction the loopback terminates back at the mapper.
            assert info.delivered_to == self.mapper
            if info.blocked is None and not self.faults.kills_traversals(
                info.traversals
            ):
                hit = True
        cost = self._jittered(
            self.timing.probe_response_us(info.hops, 0)
            if hit
            else self.timing.probe_timeout_us()
        )
        self._stats.record(
            ProbeRecord(ProbeKind.SWITCH, turns, hit, cost, "switch" if hit else None)
        )
        return hit

    def probe_loopback(self, turns: Turns) -> bool:
        """Send an arbitrary worm (zeros allowed); True iff it returns here.

        The Myricom Algorithm's comparison probes ``T1..Tn X -Sm..-S1``
        (Section 4.1) are such worms: they are neither of the two canonical
        probe kinds, but the mapper only learns whether the message came
        back. Accounted as a switch-kind probe in the generic stats; the
        Myricom mapper keeps its own per-category counters on top.
        """
        seq = validate_turns(turns, allow_zero=True, limit=self._turn_limit)
        info = self._probe_info(seq)
        hit = (
            info.ok
            and info.delivered_to == self.mapper
            and info.blocked is None
            and not self.faults.kills_traversals(info.traversals)
        )
        cost = self._jittered(
            self.timing.probe_response_us(info.hops, 0)
            if hit
            else self.timing.probe_timeout_us()
        )
        self._stats.record(
            ProbeRecord(
                ProbeKind.SWITCH, seq, hit, cost, "loopback" if hit else None
            )
        )
        return hit

    # -- cached evaluation -------------------------------------------------
    def _probe_info(self, turns: Turns) -> ProbeInfo:
        """Walk ``turns`` from the mapper, with the collision verdict.

        The cache path shares traversal tuples with the trie; the escape
        hatch recomputes everything through the pure function. Both arms
        draw from the fault RNG at identical points, so the two modes are
        byte-equivalent (the property tests assert this).
        """
        if self._evaluator is not None:
            return self._evaluator.probe_info(self.mapper, turns, self.collision)
        path = evaluate_route(self.net, self.mapper, turns)  # sanlint: disable=SAN009
        blocked = (
            self.collision.blocked_at(path.traversals)
            if path.status is PathStatus.DELIVERED
            else None
        )
        return ProbeInfo(
            path.status, path.hops, path.delivered_to, blocked, tuple(path.traversals)
        )

    def _loopback_info(self, turns: Turns) -> ProbeInfo:
        """Switch-probe loopback of ``turns`` without walking the retrace."""
        if self._evaluator is not None:
            return self._evaluator.loopback_info(self.mapper, turns, self.collision)
        return self._probe_info(switch_probe_turns(turns, limit=self._turn_limit))

    def _path(self, turns: Turns) -> PathResult:
        """Full :class:`PathResult` (node list included) for subclasses."""
        if self._evaluator is not None:
            return self._evaluator.evaluate(self.mapper, turns)
        return evaluate_route(self.net, self.mapper, turns)  # sanlint: disable=SAN009

    def warm_prefix(self, turns: Turns) -> None:
        """Hint from the mapper: ``turns`` is about to be extended."""
        if self._evaluator is not None:
            self._evaluator.warm(self.mapper, turns)

    @property
    def eval_cache_stats(self) -> EvalCacheStats | None:
        """Cache counters, or ``None`` when running with the escape hatch."""
        return self._evaluator.stats if self._evaluator is not None else None

    # -- helpers ----------------------------------------------------------
    def _responds(self, host: str) -> bool:
        if host == self.mapper:
            # The mapper's own interface always answers (it is running the
            # active mapper daemon by definition).
            return True
        return self.responders is None or host in self.responders

    def response(self, turns: Turns, *, host_first: bool = True):
        """The full probe pair of Section 2.3: returns ``R(turns)``.

        ``host_first`` controls which of the two tests is sent first; the
        second is skipped when the first already identified the node.
        Returns a host name, the string ``"switch"``, or ``None``.
        """
        if host_first:
            host = self.probe_host(turns)
            if host is not None:
                return host
            return "switch" if self.probe_switch(turns) else None
        if self.probe_switch(turns):
            return "switch"
        return self.probe_host(turns)
