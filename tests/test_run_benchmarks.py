"""Regression-gate tests for the standalone perf harness.

The gate itself must be trustworthy: these tests fabricate result JSONs
(no benchmarks actually run) and check that a synthetic regression beyond
the tolerance exits non-zero while noise within it passes.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
HARNESS = REPO_ROOT / "benchmarks" / "run_benchmarks.py"


@pytest.fixture(scope="module")
def harness():
    spec = importlib.util.spec_from_file_location("run_benchmarks", HARNESS)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _doc(**medians_us: float) -> dict:
    return {
        "schema": 1,
        "benchmarks": {
            name: {"median_us": value, "repeats": 5}
            for name, value in medians_us.items()
        },
    }


class TestFindRegressions:
    def test_25_percent_regression_trips_20_percent_gate(self, harness):
        base = _doc(full_mapping=10_000.0, route_eval=15.0)
        cur = _doc(full_mapping=12_500.0, route_eval=15.0)
        problems = harness.find_regressions(base, cur, tolerance=0.20)
        assert len(problems) == 1
        assert problems[0].startswith("full_mapping:")

    def test_noise_within_tolerance_passes(self, harness):
        base = _doc(full_mapping=10_000.0)
        cur = _doc(full_mapping=11_500.0)  # +15%
        assert harness.find_regressions(base, cur, tolerance=0.20) == []

    def test_speedups_never_trip(self, harness):
        base = _doc(full_mapping=10_000.0)
        cur = _doc(full_mapping=4_000.0)
        assert harness.find_regressions(base, cur, tolerance=0.20) == []

    def test_added_and_retired_benchmarks_are_ignored(self, harness):
        base = _doc(retired=10.0, shared=100.0)
        cur = _doc(added=10_000.0, shared=100.0)
        assert harness.find_regressions(base, cur, tolerance=0.20) == []


class TestGateCli:
    """`--input` + `--check-against` is the pure compare path: no suite
    runs, so the test exercises exactly the exit-code contract CI sees."""

    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_synthetic_25_percent_regression_exits_nonzero(
        self, harness, tmp_path, capsys
    ):
        base = self._write(tmp_path, "base.json", _doc(full_mapping=10_000.0))
        cur = self._write(tmp_path, "cur.json", _doc(full_mapping=12_500.0))
        assert harness.main(["--check-against", base, "--input", cur]) == 1
        assert "REGRESSIONS" in capsys.readouterr().err

    def test_within_tolerance_exits_zero(self, harness, tmp_path):
        base = self._write(tmp_path, "base.json", _doc(full_mapping=10_000.0))
        cur = self._write(tmp_path, "cur.json", _doc(full_mapping=11_000.0))
        assert harness.main(["--check-against", base, "--input", cur]) == 0

    def test_custom_tolerance_is_respected(self, harness, tmp_path):
        base = self._write(tmp_path, "base.json", _doc(full_mapping=10_000.0))
        cur = self._write(tmp_path, "cur.json", _doc(full_mapping=12_500.0))
        args = ["--check-against", base, "--input", cur, "--tolerance", "0.30"]
        assert harness.main(args) == 0


class TestCommittedBaselines:
    @pytest.mark.parametrize("name", ["BENCH_micro.json", "BENCH_mapping.json"])
    def test_baseline_is_committed_and_well_formed(self, name):
        doc = json.loads((REPO_ROOT / "benchmarks" / name).read_text())
        assert doc["schema"] == 1
        assert doc["benchmarks"]
        for entry in doc["benchmarks"].values():
            assert entry["median_us"] > 0

    def test_micro_baseline_records_the_2x_cache_speedup(self):
        doc = json.loads(
            (REPO_ROOT / "benchmarks" / "BENCH_micro.json").read_text()
        )
        benches = doc["benchmarks"]
        cached = benches["full_mapping_subcluster_cached"]["median_us"]
        uncached = benches["full_mapping_subcluster_uncached"]["median_us"]
        assert uncached / cached >= 2.0
        assert benches["full_mapping_subcluster_cached"]["extra"][
            "cache_hit_rate"
        ] > 0.5
