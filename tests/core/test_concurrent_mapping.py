"""Concurrent multi-mapper simulation tests."""

import pytest

from repro.core.concurrent_mapping import run_concurrent_mappers
from repro.topology.analysis import core_network, recommended_search_depth
from repro.topology.isomorphism import match_networks


class TestEveryoneMaps:
    def test_all_mappers_produce_correct_maps(
        self, subcluster_c, subcluster_c_depth, subcluster_c_core
    ):
        mappers = ["C-n00", "C-n17", "C-svc"]
        out = run_concurrent_mappers(
            subcluster_c, mappers, search_depth=subcluster_c_depth
        )
        assert set(out.mappers) == set(mappers)
        for outcome in out.mappers.values():
            assert not outcome.yielded
            assert outcome.result is not None
            report = match_networks(outcome.result.network, subcluster_c_core)
            assert report, f"{outcome.host}: {report.reason}"

    def test_concurrency_is_sound_even_with_collisions(self, ring_net):
        """Whatever contention does, produced maps embed in the truth."""
        depth = recommended_search_depth(ring_net, "h0")
        out = run_concurrent_mappers(
            ring_net,
            list(ring_net.hosts),
            search_depth=depth,
            start_stagger_us=1.0,  # maximal overlap
        )
        for outcome in out.mappers.values():
            produced = outcome.result.network
            assert set(produced.hosts) <= set(ring_net.hosts)
            assert produced.n_switches <= ring_net.n_switches
            assert produced.n_wires <= ring_net.n_wires

    def test_deterministic(self, ring_net):
        depth = recommended_search_depth(ring_net, "h0")

        def run_once():
            out = run_concurrent_mappers(
                ring_net, ["h0", "h2"], search_depth=depth
            )
            return {
                h: (o.finished_at_us, o.result.stats.total_probes)
                for h, o in out.mappers.items()
            }

        assert run_once() == run_once()

    def test_parallel_wall_clock_close_to_solo(
        self, subcluster_c, subcluster_c_depth, mapped_c
    ):
        """Three mappers sharing the fabric barely slow each other (probe
        worms are microseconds; probes are hundreds of microseconds apart)."""
        out = run_concurrent_mappers(
            subcluster_c,
            ["C-n00", "C-n17", "C-svc"],
            search_depth=subcluster_c_depth,
        )
        assert out.elapsed_ms < mapped_c.elapsed_ms * 1.5


class TestElectionYieldRule:
    def test_only_highest_address_completes(
        self, subcluster_c, subcluster_c_depth
    ):
        mappers = ["C-n00", "C-n17", "C-svc"]
        out = run_concurrent_mappers(
            subcluster_c,
            mappers,
            search_depth=subcluster_c_depth,
            yield_rule=True,
        )
        winner = out.mappers["C-svc"]
        assert not winner.yielded
        assert winner.result is not None
        losers = [out.mappers[h] for h in ("C-n00", "C-n17")]
        assert all(l.yielded for l in losers)
        assert all(l.result is None for l in losers)

    def test_winner_map_still_correct(
        self, subcluster_c, subcluster_c_depth, subcluster_c_core
    ):
        out = run_concurrent_mappers(
            subcluster_c,
            ["C-n00", "C-n17", "C-svc"],
            search_depth=subcluster_c_depth,
            yield_rule=True,
        )
        winner = out.mappers["C-svc"].result
        # Silent rivals may cost anchors; the result must still embed in
        # the truth, and usually is complete (rivals yield early).
        assert set(winner.network.hosts) <= set(subcluster_c.hosts)

    def test_requires_mappers(self, subcluster_c, subcluster_c_depth):
        with pytest.raises(ValueError):
            run_concurrent_mappers(
                subcluster_c, [], search_depth=subcluster_c_depth
            )


class TestMyricomConcurrent:
    def test_concurrent_myricom_mappers(
        self, subcluster_c, subcluster_c_depth, subcluster_c_core
    ):
        """'Both algorithms have two operational modes' (Section 4.2): the
        Myricom mapper also runs under the concurrent scheduler."""
        from repro.baselines.myricom import MyricomMapper

        out = run_concurrent_mappers(
            subcluster_c,
            ["C-n00", "C-svc"],
            search_depth=subcluster_c_depth,
            mapper_factory=lambda svc: MyricomMapper(
                svc, search_depth=subcluster_c_depth
            ),
        )
        for outcome in out.mappers.values():
            assert outcome.result is not None
            report = match_networks(outcome.result.network, subcluster_c_core)
            assert report, f"{outcome.host}: {report.reason}"


class TestModelCrossValidation:
    def test_replay_election_agrees_with_full_simulation(
        self, subcluster_c, subcluster_c_depth
    ):
        """The fast replay model (core.election, used for Figure 7 sweeps)
        and the full lockstep simulation must land in the same regime."""
        from repro.core.election import election_run

        replay = election_run(
            subcluster_c, search_depth=subcluster_c_depth, seed=0
        )
        full = run_concurrent_mappers(
            subcluster_c,
            sorted(subcluster_c.hosts),
            search_depth=subcluster_c_depth,
            yield_rule=True,
            start_stagger_us=300.0,
        )
        winner_ms = full.mappers["C-svc"].finished_at_us / 1000.0
        assert full.mappers["C-svc"].result is not None
        ratio = replay.elapsed_ms / winner_ms
        assert 0.5 <= ratio <= 2.0, (replay.elapsed_ms, winner_ms)
