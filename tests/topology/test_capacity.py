"""Cut-capacity analysis tests."""

import pytest

from repro.topology.builder import NetworkBuilder
from repro.topology.capacity import (
    bisection_links,
    host_cut_capacity,
    subcluster_cut,
)
from repro.topology.generators import combine_subclusters


class TestHostCut:
    def test_single_switch_limited_by_host_links(self, tiny_net):
        # Each host has one wire; flow between {h0} and {h1} is 1.
        assert host_cut_capacity(tiny_net, {"h0"}, {"h1"}) == 1
        assert host_cut_capacity(tiny_net, {"h0", "h1"}, {"h2"}) == 1
        assert host_cut_capacity(tiny_net, {"h0"}, {"h1", "h2"}) == 1

    def test_parallel_wires_add_capacity(self, two_switch_net):
        # Two hosts each side, two cross cables: flow limited by min(2,2,2).
        cut = host_cut_capacity(two_switch_net, {"h0", "h1"}, {"h2", "h3"})
        assert cut == 2

    def test_bottleneck_cable(self):
        b = NetworkBuilder()
        b.switches("s0", "s1")
        for i in range(4):
            b.host(f"h{i}")
        b.attach("h0", "s0")
        b.attach("h1", "s0")
        b.attach("h2", "s1")
        b.attach("h3", "s1")
        b.link("s0", "s1")  # single cable: the bottleneck
        net = b.build()
        assert host_cut_capacity(net, {"h0", "h1"}, {"h2", "h3"}) == 1

    def test_input_validation(self, tiny_net):
        with pytest.raises(ValueError):
            host_cut_capacity(tiny_net, set(), {"h1"})
        with pytest.raises(ValueError):
            host_cut_capacity(tiny_net, {"h0"}, {"h0"})
        with pytest.raises(ValueError):
            host_cut_capacity(tiny_net, {"s0"}, {"h1"})


class TestNowComposition:
    def test_two_cross_cables_between_subclusters(self):
        """The composition installs two inter-root cables; the
        inter-subcluster cut must be exactly 2."""
        net = combine_subclusters("C", "A")
        assert subcluster_cut(net, "C", "A") == 2

    def test_extra_root_cable_raises_the_cut(self):
        """Figure 5's caption: more root links -> more simultaneously
        usable routes between subclusters."""
        net = combine_subclusters("C", "A")
        before = subcluster_cut(net, "C", "A")
        # A strategically placed cable or two (Section 5.5's phrase).
        free_c = net.free_ports("C-root-1")[0]
        free_a = net.free_ports("A-root-1")[0]
        net.connect("C-root-1", free_c, "A-root-1", free_a)
        assert subcluster_cut(net, "C", "A") == before + 1

    def test_bisection_default_partition(self, two_switch_net):
        assert bisection_links(two_switch_net) >= 1
