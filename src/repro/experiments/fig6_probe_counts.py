"""Figure 6 — host and switch probe message hit ratios.

"Each row shows the number of host and switch probes, the percentage that
end at a host or switch, respectively. ... the first row shows that the
algorithm maps the C subcluster with 450 total messages of which 264
produced responses but 186 produced none. The message counts are
algorithmic properties."

Absolute counts differ between implementations (probe-order heuristics and
pair ordering are implementation choices the paper only sketches); the
properties this experiment checks against the paper are the *shape*:
super-linear growth of probe counts with system size, host-hit ratio
degrading faster than switch-hit ratio as subclusters are added, and the
switch-probe count exceeding the host-probe count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mapper_protocol import create_mapper
from repro.experiments.common import PAPER, SYSTEMS, system
from repro.experiments.tables import print_table
from repro.simulator.stack import TraceBusLayer, build_service_stack
from repro.topology.isomorphism import match_networks

__all__ = ["ProbeCountRow", "run", "main"]


@dataclass(frozen=True, slots=True)
class ProbeCountRow:
    system: str
    host_probes: int
    host_hits: int
    host_ratio: float
    switch_probes: int
    switch_hits: int
    switch_ratio: float
    map_correct: bool
    paper: tuple[int, int, int, int, int, int]


def run(*, host_first: bool = False) -> list[ProbeCountRow]:
    rows = []
    for name in SYSTEMS:
        fixture = system(name)
        svc = build_service_stack(fixture.net, fixture.mapper_host)
        result = create_mapper(
            "berkeley", svc, search_depth=fixture.search_depth,
            host_first=host_first,
        ).map()
        s = result.stats
        rows.append(
            ProbeCountRow(
                system=name,
                host_probes=s.host_probes,
                host_hits=s.host_hits,
                host_ratio=s.host_hit_ratio,
                switch_probes=s.switch_probes,
                switch_hits=s.switch_hits,
                switch_ratio=s.switch_hit_ratio,
                map_correct=bool(match_networks(result.network, fixture.core)),
                paper=PAPER.fig6[name],
            )
        )
    return rows


def probe_length_histogram(name: str = "C") -> str:
    """Per-probe-length hit ratios for one system (supporting analysis).

    Explains the Figure 6 ratios: deep probes are replicate-exploration
    tails and hit less, and every miss costs the full timeout.
    """
    from repro.core.instrumentation import TraceRecorder, analyze_records

    fixture = system(name)
    recorder = TraceRecorder()
    svc = build_service_stack(
        fixture.net,
        fixture.mapper_host,
        layers=(TraceBusLayer((recorder,)),),
    )
    create_mapper(
        "berkeley", svc, search_depth=fixture.search_depth, host_first=False
    ).map()
    analysis = analyze_records(recorder.records)
    return (
        analysis.histogram()
        + f"\ntimeout share of mapping time: {analysis.timeout_share:.0%}"
    )


def main() -> None:
    rows = run()
    print_table(
        [
            "System",
            "host",
            "hits",
            "ratio",
            "switch",
            "hits",
            "ratio",
            "correct",
            "paper (host/hits/% | sw/hits/%)",
        ],
        [
            (
                r.system,
                r.host_probes,
                r.host_hits,
                f"{r.host_ratio:.0%}",
                r.switch_probes,
                r.switch_hits,
                f"{r.switch_ratio:.0%}",
                "yes" if r.map_correct else "NO",
                "%d/%d/%d%% | %d/%d/%d%%" % r.paper,
            )
            for r in rows
        ],
        title="Figure 6: host and switch probe message hit ratios",
    )
    print("Probe-length breakdown for system C:")
    print(probe_length_histogram("C"))


if __name__ == "__main__":
    main()
