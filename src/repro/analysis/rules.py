"""The SAN rule set: domain invariants of the mapping reproduction.

Each rule enforces one assumption the paper's correctness argument rests
on (Sections 2-3) or one engineering discipline the simulator substrate
needs to stay deterministic and replayable. See ``docs/STATIC_ANALYSIS.md``
for the full rationale of every rule.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterator

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ModuleInfo
from repro.analysis.registry import ProjectRule, Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.project import Project

__all__ = [
    "NoWallClock",
    "NoUnseededRng",
    "NoFloatTimingEquality",
    "PortLiteralInRange",
    "SchedulerStateEncapsulation",
    "NoSilentBroadExcept",
    "ProbeConstructionViaService",
    "NoMutableDefaults",
    "ServiceEvaluatesViaCache",
    "SeededChaosSchedules",
    "NoAdHocServiceWrappers",
    "MappersViaRegistry",
    "EpochSoundMutators",
    "SeededRngTaint",
    "ProbeLayerPurity",
]

#: Switch radix of the paper's Myrinet fabric; port indices live in [0, 8).
DEFAULT_RADIX = 8

#: Packages whose code runs under the simulated clock (SAN001, SAN005).
SIMULATED_TIME_PACKAGES = ("repro.simulator", "repro.core")


def _call_name(node: ast.Call) -> str | None:
    """Terminal identifier of the called object (``Foo`` for ``a.b.Foo()``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: Methods whose presence marks a class as a ProbeService implementation.
_SERVICE_METHODS = frozenset({"probe_host", "probe_switch"})


def _class_is_service(cls: ast.ClassDef) -> bool:
    """Does this class implement (or inherit) the ProbeService protocol?"""
    for stmt in cls.body:
        if (
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name in _SERVICE_METHODS
        ):
            return True
    # Subclasses of a *ProbeService base inherit the protocol methods.
    return any(
        (base_name := _dotted(base)) is not None
        and base_name.split(".")[-1].endswith("ProbeService")
        for base in cls.bases
    )


@register
class NoWallClock(Rule):
    rule_id = "SAN001"
    title = "no wall-clock reads in simulator/core hot paths"
    rationale = (
        "Mapping time is *simulated* time: the lockstep scheduler and the "
        "event queue define `now`. A wall-clock read in repro.simulator or "
        "repro.core couples results to host speed and destroys "
        "byte-for-byte replayability of Figure 7/9 runs."
    )
    hint = (
        "use the simulated clock (EventQueue.now / LockstepScheduler.now / "
        "ProbeStats.elapsed_us) instead of the host's wall clock"
    )

    _TIME_FNS = frozenset(
        {
            "time",
            "monotonic",
            "perf_counter",
            "process_time",
            "time_ns",
            "monotonic_ns",
            "perf_counter_ns",
            "process_time_ns",
        }
    )
    _DATETIME_FNS = frozenset({"now", "utcnow", "today"})

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        if not module.in_package(*SIMULATED_TIME_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self._TIME_FNS:
                        yield self.diag(
                            module,
                            node,
                            f"wall-clock import `from time import {alias.name}` "
                            "in simulated-time code",
                        )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if parts[0] == "time" and parts[-1] in self._TIME_FNS:
                    yield self.diag(
                        module, node, f"wall-clock call `{dotted}()` in simulated-time code"
                    )
                elif (
                    len(parts) >= 2
                    and parts[-2] == "datetime"
                    and parts[-1] in self._DATETIME_FNS
                ):
                    yield self.diag(
                        module, node, f"wall-clock call `{dotted}()` in simulated-time code"
                    )


@register
class NoUnseededRng(Rule):
    rule_id = "SAN002"
    title = "no unseeded randomness"
    rationale = (
        "Every stochastic path (jitter, daemon placement, fault injection, "
        "randomized probing) must be replayable from a seed. The global "
        "`random` module and the legacy `np.random.*` functions share hidden "
        "process-wide state; one call silently breaks replay."
    )
    hint = (
        "construct an explicit `random.Random(seed)` (or "
        "`numpy.random.default_rng(seed)`) and thread it through the call site"
    )

    _ALLOWED_RANDOM = frozenset({"Random", "SystemRandom", "getstate"})
    _ALLOWED_NP = frozenset({"default_rng", "Generator", "SeedSequence", "BitGenerator"})

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        numpy_aliases = {"numpy"}
        imports_random = False
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "random":
                        imports_random = True
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in self._ALLOWED_RANDOM:
                            yield self.diag(
                                module,
                                node,
                                f"`from random import {alias.name}` uses the "
                                "shared global RNG state",
                            )
                elif node.module in ("numpy.random", "numpy"):
                    for alias in node.names:
                        if node.module == "numpy.random" and alias.name not in self._ALLOWED_NP:
                            yield self.diag(
                                module,
                                node,
                                f"`from numpy.random import {alias.name}` uses "
                                "the legacy global numpy RNG",
                            )
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                value = node.value
                if (
                    imports_random
                    and isinstance(value, ast.Name)
                    and value.id == "random"
                    and node.attr not in self._ALLOWED_RANDOM
                ):
                    yield self.diag(
                        module,
                        node,
                        f"`random.{node.attr}` draws from the unseeded global RNG",
                    )
                elif (
                    isinstance(value, ast.Attribute)
                    and value.attr == "random"
                    and isinstance(value.value, ast.Name)
                    and value.value.id in numpy_aliases
                    and node.attr not in self._ALLOWED_NP
                ):
                    yield self.diag(
                        module,
                        node,
                        f"`{value.value.id}.random.{node.attr}` uses the legacy "
                        "global numpy RNG",
                    )


#: Identifier fragments that mark a value as carrying simulated time.
_TIMING_TOKENS = frozenset(
    {
        "latency",
        "elapsed",
        "delay",
        "cost",
        "rtt",
        "timeout",
        "jitter",
        "duration",
        "us",
        "ms",
        "now",
        "wake",
    }
)


def _is_timing_name(node: ast.expr) -> bool:
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return False
    tokens = {t for t in name.lower().strip("_").split("_") if t}
    return bool(tokens & _TIMING_TOKENS)


@register
class NoFloatTimingEquality(Rule):
    rule_id = "SAN003"
    title = "no float ==/!= on latency or timing values"
    rationale = (
        "Probe costs and clocks are floats accumulated in different orders "
        "across runs and platforms; exact equality on them makes results "
        "depend on summation order, which determinism forbids relying on."
    )
    hint = (
        "compare timing floats with `math.isclose(...)` or an explicit "
        "epsilon/ordering check, never `==`/`!=`"
    )

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                pair = (left, right)
                if not any(_is_timing_name(side) for side in pair):
                    continue
                # Comparisons against None / strings / bools are identity or
                # category checks, not float comparisons.
                if any(
                    isinstance(side, ast.Constant)
                    and (side.value is None or isinstance(side.value, (str, bool)))
                    for side in pair
                ):
                    continue
                yield self.diag(
                    module,
                    node,
                    "exact float equality on a timing value "
                    f"(`{ast.unparse(left)} {'==' if isinstance(op, ast.Eq) else '!='} "
                    f"{ast.unparse(right)}`)",
                )


@register
class PortLiteralInRange(Rule):
    rule_id = "SAN004"
    title = "port-index literals must lie in [0, radix)"
    rationale = (
        "Port arithmetic is relative and non-modular (Section 2.2): indices "
        "live in [0, 8) on the paper's 8-port Myrinet switches, and a literal "
        "outside that range can never name a real port — it is a latent "
        "off-by-radix bug the type system cannot catch."
    )
    hint = (
        "derive port indices from `range(radix)` (or validate against the "
        "switch radix); a literal >= 8 or < 0 cannot name a Myrinet port"
    )

    _PORT_KW_EXCLUDED_PREFIXES = ("n_", "num_", "max_", "min_", "hosts_per")

    @staticmethod
    def _int_literal(node: ast.expr) -> int | None:
        """The value of an integer literal, unfolding unary +/- signs."""
        sign = 1
        while isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            if isinstance(node.op, ast.USub):
                sign = -sign
            node = node.operand
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, int)
            and not isinstance(node.value, bool)
        ):
            return sign * node.value
        return None

    def _is_port_kw(self, name: str) -> bool:
        if name.startswith(self._PORT_KW_EXCLUDED_PREFIXES):
            return False
        return name == "port" or name.endswith("_port")

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg and self._is_port_kw(kw.arg):
                    value = self._int_literal(kw.value)
                    if value is not None and not 0 <= value < DEFAULT_RADIX:
                        yield self.diag(
                            module,
                            kw.value,
                            f"port keyword `{kw.arg}={value}` outside "
                            f"[0, {DEFAULT_RADIX})",
                        )
            # Network.connect(node_a, port_a, node_b, port_b): positional
            # port literals sit at indices 1 and 3.
            if _call_name(node) == "connect" and len(node.args) == 4:
                for pos in (1, 3):
                    arg = node.args[pos]
                    value = self._int_literal(arg)
                    if value is not None and not 0 <= value < DEFAULT_RADIX:
                        yield self.diag(
                            module,
                            arg,
                            f"port literal {value} passed to connect() "
                            f"outside [0, {DEFAULT_RADIX})",
                        )


@register
class SchedulerStateEncapsulation(Rule):
    rule_id = "SAN005"
    title = "simulator clock/queue state mutated only inside repro.simulator"
    rationale = (
        "Determinism of the lockstep substrate depends on every state "
        "transition flowing through schedule()/wait()/run(). A direct write "
        "to `_now`, `_heap`, or `_queue` from outside the simulator package "
        "bypasses tie-breaking and reorders events between runs."
    )
    hint = (
        "go through the scheduler API (schedule(), schedule_at(), wait(), "
        "run(until=...)) instead of writing simulator internals directly"
    )

    _GUARDED = frozenset({"_now", "_heap", "_queue", "_baton", "_running"})

    def _targets(self, node: ast.stmt) -> list[ast.expr]:
        if isinstance(node, ast.Assign):
            return list(node.targets)
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return [node.target]
        if isinstance(node, ast.Delete):
            return list(node.targets)
        return []

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        if module.in_package("repro.simulator"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
                continue
            for target in self._targets(node):
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in self._GUARDED
                    # Writes to one's *own* private state (self._now) belong
                    # to whatever class is being defined, not the simulator.
                    and not (
                        isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    )
                ):
                    yield self.diag(
                        module,
                        node,
                        f"direct write to simulator-private `{ast.unparse(target)}` "
                        "from outside repro.simulator",
                    )


@register
class NoSilentBroadExcept(Rule):
    rule_id = "SAN006"
    title = "no bare/broad except that silently swallows"
    rationale = (
        "Under the paper's system model a deduction contradiction is a "
        "*signal* (MappingError), not noise. A swallowed broad exception "
        "turns model violations and probe corruption into silently wrong "
        "maps; every handler must be narrow, or re-raise, or record/log "
        "the exception it caught."
    )
    hint = (
        "catch the narrowest exception type that can actually occur, or "
        "re-raise / log / store the bound exception instead of discarding it"
    )

    _BROAD = frozenset({"Exception", "BaseException"})
    _LOGGERS = frozenset({"logging", "log", "logger", "warnings"})

    def _is_broad(self, type_node: ast.expr | None) -> bool:
        if type_node is None:
            return True  # bare `except:`
        if isinstance(type_node, ast.Name):
            return type_node.id in self._BROAD
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(elt) for elt in type_node.elts)
        return False

    def _handler_is_honest(self, handler: ast.ExceptHandler) -> bool:
        bound = handler.name
        for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
            if isinstance(node, ast.Raise):
                return True
            if bound and isinstance(node, ast.Name) and node.id == bound:
                return True
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted and dotted.split(".")[0] in self._LOGGERS:
                    return True
        return False

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if node.type is None:
                yield self.diag(module, node, "bare `except:` swallows everything")
            elif not self._handler_is_honest(node):
                caught = ast.unparse(node.type)
                yield self.diag(
                    module,
                    node,
                    f"broad `except {caught}` neither re-raises, logs, nor "
                    "uses the caught exception",
                )


@register
class ProbeConstructionViaService(Rule):
    rule_id = "SAN007"
    title = "probe records built only by ProbeService implementations"
    rationale = (
        "Mapping algorithms may observe the network *only* through the "
        "response function R exposed by ProbeService (Section 2.3). A "
        "mapper fabricating ProbeRecord objects is inventing observations "
        "— it breaks the in-band honesty of the reproduction and corrupts "
        "the Figure 6 probe accounting."
    )
    hint = (
        "call probe_host()/probe_switch() on a ProbeService and let the "
        "service record the probe; only service implementations construct "
        "ProbeRecord"
    )

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        if module.in_package("repro.simulator"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or _call_name(node) != "ProbeRecord":
                continue
            cls = module.enclosing_class(node)
            if cls is not None and _class_is_service(cls):
                continue
            yield self.diag(
                module,
                node,
                "ProbeRecord constructed outside a ProbeService implementation",
            )


@register
class NoMutableDefaults(Rule):
    rule_id = "SAN008"
    title = "no mutable default arguments"
    rationale = (
        "A mutable default is shared across every call of the function — "
        "state leaking between mapping runs is exactly the kind of hidden "
        "coupling that makes 'same seed, same result' false."
    )
    hint = (
        "default to None and create the list/dict/set inside the function "
        "body (or use dataclasses.field(default_factory=...))"
    )

    _FACTORY_CALLS = frozenset(
        {"list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict"}
    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node)
            return name in self._FACTORY_CALLS
        return False

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in [*args.defaults, *args.kw_defaults]:
                if default is not None and self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.diag(
                        module,
                        default,
                        f"mutable default argument in `{name}` "
                        f"(`{ast.unparse(default)}`)",
                    )


@register
class ServiceEvaluatesViaCache(Rule):
    rule_id = "SAN009"
    title = "probe services evaluate paths through the incremental cache"
    rationale = (
        "Probe services walk overlapping turn prefixes thousands of times "
        "per mapping run; the IncrementalPathEvaluator trie is the single "
        "evaluation authority that makes them O(1) per extension and keeps "
        "the cache counters honest. A direct evaluate_route() call inside a "
        "ProbeService silently bypasses the cache: the result is still "
        "correct, so nothing fails — the evaluation cost and the reported "
        "hit rate just quietly stop meaning anything."
    )
    hint = (
        "use IncrementalPathEvaluator (probe_info()/loopback_info()/"
        "evaluate()) or the service's _probe_info()/_path() helpers; a "
        "deliberate pure-path escape hatch marks the line with "
        "`# sanlint: disable=SAN009`"
    )

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        # No package exemption: the quiescent service's own escape-hatch
        # lines carry explicit disable comments instead.
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or _call_name(node) != "evaluate_route":
                continue
            cls = module.enclosing_class(node)
            if cls is None or not _class_is_service(cls):
                continue
            yield self.diag(
                module,
                node,
                "direct evaluate_route() call inside a ProbeService "
                "implementation bypasses the evaluation cache",
            )


@register
class SeededChaosSchedules(Rule):
    rule_id = "SAN010"
    title = "chaos scenarios and campaigns carry explicit seeds"
    rationale = (
        "A chaos cell is only evidence if it replays bit-for-bit: the "
        "determinism oracle, the shrinker and the committed corpus all "
        "assume that the schedule plus its seed pins every stochastic "
        "choice. A Scenario(...) built without seed=, or a "
        "CampaignConfig(...) without seeds=, would fall back on ambient "
        "randomness and turn every failure it finds into an unreproducible "
        "anecdote."
    )
    hint = (
        "pass seed= to Scenario(...) and seeds=(...) to CampaignConfig(...) "
        "as explicit keyword arguments (positional construction doesn't "
        "count: the call must be auditable at the call site)"
    )

    _REQUIRED = {"Scenario": "seed", "CampaignConfig": "seeds"}

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            needed = self._REQUIRED.get(name or "")
            if needed is None:
                continue
            kwarg_names = {kw.arg for kw in node.keywords}
            if needed in kwarg_names:
                continue
            if None in kwarg_names:
                continue  # a **kwargs splat may carry it; don't guess
            yield self.diag(
                module,
                node,
                f"`{name}(...)` without an explicit `{needed}=` keyword — "
                "an unseeded chaos schedule is not replayable",
            )


@register
class NoAdHocServiceWrappers(Rule):
    rule_id = "SAN011"
    title = "probe-service behavior composes as stack layers, not wrappers"
    rationale = (
        "Every probe walks one accounting path: the quiescent engine "
        "evaluates, applies the composed middleware layers, and records "
        "exactly one ProbeRecord. A class outside the stack that "
        "re-implements probe_host/probe_switch/probe_loopback forks that "
        "path — its probes bypass the layers' counting, capping, chaos "
        "triggers and trace bus, and the five wrapper classes this rule "
        "replaced each drifted from the engine in exactly that way."
    )
    hint = (
        "subclass ProbeLayer (before/gate/after/retry_after_miss hooks) and "
        "compose it via build_service_stack(layers=...); new probe *kinds* "
        "belong in QuiescentProbeService subclasses as new method names "
        "routed through _transact()"
    )

    #: The canonical probe entry points owned by the stacked engine.
    _CANONICAL = frozenset({"probe_host", "probe_switch", "probe_loopback"})

    #: The only modules allowed to define the canonical entry points.
    _STACK_MODULES = frozenset(
        {"repro.simulator.stack", "repro.simulator.quiescent"}
    )

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        if module.module in self._STACK_MODULES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            # The ProbeService Protocol *declares* the entry points; only
            # concrete implementations fork the accounting path.
            if any(
                (base := _dotted(b)) is not None
                and base.split(".")[-1] == "Protocol"
                for b in node.bases
            ):
                continue
            for stmt in node.body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name in self._CANONICAL
                ):
                    yield self.diag(
                        module,
                        stmt,
                        f"`{node.name}.{stmt.name}` re-implements a canonical "
                        "probe entry point outside the service stack",
                    )


@register
class MappersViaRegistry(Rule):
    rule_id = "SAN015"
    title = "mappers register in MAPPER_REGISTRY and are built by name"
    rationale = (
        "The Mapper protocol is only a seam if every algorithm is "
        "reachable through it: an unregistered mapper class cannot be "
        "raced by the tournament, driven by the remap daemon or named in "
        "a service payload, and a consumer layer that calls a concrete "
        "constructor silently re-couples itself to one algorithm — the "
        "exact duplication the registry replaced across the daemon, "
        "chaos runner, workers, CLI, experiments and benchmarks."
    )
    hint = (
        "decorate the class with @register_mapper(name, summary=...) and "
        "construct through create_mapper(name, ...) / "
        "resolve_mapper_factory(name); direct constructor calls stay "
        "legal inside repro.core and in the module defining the class"
    )

    #: ``FooMapper`` — the naming convention every algorithm follows.
    _MAPPER_NAME = re.compile(r"^[A-Z]\w*Mapper$")

    #: Packages whose modules may construct mapper classes directly: the
    #: algorithm internals themselves (election, parallel drivers, the
    #: registry module). Tests are outside sanlint's scope already.
    _CONSTRUCTION_PACKAGES = ("repro.core",)

    def _is_mapper_class(self, cls: ast.ClassDef) -> bool:
        """A class that implements the protocol (or extends a mapper).

        ``map()`` is the protocol; a ``*Mapper`` base inherits it. The
        pedagogical Section 3.1 ``LabeledMapper`` has only ``run()`` and
        deliberately stays outside the registry.
        """
        if not self._MAPPER_NAME.match(cls.name):
            return False
        if any(
            (base := _dotted(b)) is not None
            and base.split(".")[-1] == "Protocol"
            for b in cls.bases
        ):
            return False
        has_map = any(
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == "map"
            for stmt in cls.body
        )
        extends_mapper = any(
            (base := _dotted(b)) is not None
            and self._MAPPER_NAME.match(base.split(".")[-1])
            for b in cls.bases
        )
        return has_map or extends_mapper

    @staticmethod
    def _is_registered(cls: ast.ClassDef) -> bool:
        for deco in cls.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = _dotted(target)
            if name is not None and name.split(".")[-1] == "register_mapper":
                return True
        return False

    def check(self, module: ModuleInfo) -> Iterator[Diagnostic]:
        if module.module == "repro.core.mapper_protocol":
            return
        defined = {
            node.name
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        may_construct = module.in_package(*self._CONSTRUCTION_PACKAGES)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                if self._is_mapper_class(node) and not self._is_registered(node):
                    yield self.diag(
                        module,
                        node,
                        f"mapper class `{node.name}` is not decorated with "
                        "@register_mapper — it is invisible to the registry",
                    )
            elif isinstance(node, ast.Call) and not may_construct:
                name = _call_name(node)
                if (
                    name is not None
                    and self._MAPPER_NAME.match(name)
                    and name not in defined
                ):
                    yield self.diag(
                        module,
                        node,
                        f"direct `{name}(...)` construction outside "
                        "repro.core — build it by registry name instead",
                    )


# ---------------------------------------------------------------------------
# sanflow project rules: whole-program, flow-sensitive (SAN012-SAN014).
# These never parse source themselves — they query the Project built from
# cached module summaries; see docs/SANFLOW.md for the architecture.
# ---------------------------------------------------------------------------


@register
class EpochSoundMutators(ProjectRule):
    rule_id = "SAN012"
    title = "state mutations in epoch-versioned classes bump the epoch on every path"
    rationale = (
        "The prefix-trie evaluator caches whole probe walks keyed on "
        "`topology_epoch`/`fault_epoch`. A mutator with even one "
        "return path that skips the bump lets a cached walk survive a "
        "topology or fault change — the mapper then reasons about a "
        "network that no longer exists, which is precisely the "
        "inconsistent-observation failure the paper's incremental "
        "remapping argument (Section 3) rules out. Raise paths are "
        "exempt: a failed mutator aborts before state and epoch diverge."
    )
    hint = (
        "bump the epoch (`self._bump_epoch()`) on every path that "
        "returns after the mutation, or route the change through an "
        "existing epoch-bumping mutator"
    )

    def check_project(self, project: "Project") -> Iterator[Diagnostic]:
        for summary, cls in project.iter_classes():
            props = project.epoch_properties_of(summary["module"], cls["name"])
            if not props:
                continue
            prop = props[0]
            for name, method in cls["methods"].items():
                for fact in method["unbumped_mutations"]:
                    yield self.project_diag(
                        summary["path"],
                        fact["line"],
                        fact["col"],
                        f"`{cls['name']}.{name}` {fact['desc']} on a path "
                        f"that returns without bumping `{prop}`",
                    )


@register
class SeededRngTaint(ProjectRule):
    rule_id = "SAN013"
    title = "every RNG constructor seed traces to an explicit seed source"
    rationale = (
        "SAN002 catches the bare `random.random()` module calls; this "
        "rule proves the stronger property the chaos determinism oracle "
        "replays on: every `random.Random(...)` argument, followed "
        "through the call graph, derives from an explicit `seed=` "
        "parameter, a Scenario field, or a split of one — never from "
        "wall-clock time, `id()`, or an unseeded default. Without it a "
        "single forgotten argument silently breaks byte-for-byte replay "
        "of whole campaigns."
    )
    hint = (
        "thread an explicit seed (a `seed=` parameter, Scenario field, "
        "or `derive_seed(...)` split) into this constructor"
    )

    def check_project(self, project: "Project") -> Iterator[Diagnostic]:
        for summary, site in project.iter_rng_sites():
            verdict = project.evaluate_taint(site["term"])
            if verdict.ok:
                continue
            ctor = site["ctor"].rsplit(".", 1)[-1]
            yield self.project_diag(
                summary["path"],
                site["line"],
                site["col"],
                f"`{ctor}(...)` seed does not trace to an explicit seed "
                f"source: {verdict.why}",
            )


@register
class ProbeLayerPurity(ProjectRule):
    rule_id = "SAN014"
    title = "ProbeLayer hooks leave Network/FaultModel state alone"
    rationale = (
        "The middleware stack's equivalence proofs (stacked service ≡ "
        "bare service + accounting) assume layers observe probes but "
        "never perturb the substrate. A hook that writes Network or "
        "FaultModel state directly — bypassing the epoch-bumping "
        "mutators — invalidates both the proofs and every cached walk, "
        "without any epoch trace of the change. Chaos layers *may* "
        "inject faults, but only through the public mutators, which "
        "this rule still permits."
    )
    hint = (
        "call a public epoch-bumping mutator (`set_drop_prob`, "
        "`set_dead_wires`, `connect`, ...) instead of touching simulator "
        "state from a layer hook"
    )

    def check_project(self, project: "Project") -> Iterator[Diagnostic]:
        for summary, cls in project.iter_classes():
            if not project.is_probe_layer(summary["module"], cls["name"]):
                continue
            for name, method in cls["methods"].items():
                for fact in method["impurities"]:
                    yield self.project_diag(
                        summary["path"],
                        fact["line"],
                        fact["col"],
                        f"ProbeLayer hook `{cls['name']}.{name}` "
                        f"{fact['desc']} — simulator state must change "
                        "only through epoch-bumping mutators",
                    )
