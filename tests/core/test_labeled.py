"""The simplified (Section 3.1) algorithm and its agreement with the
production mapper — the two presentations of the same theorem."""

import pytest

from repro.core.labeled import LabeledMapper
from repro.core.mapper import BerkeleyMapper, MappingError
from repro.simulator.collision import CutThroughModel
from repro.simulator.quiescent import QuiescentProbeService
from repro.topology.analysis import core_network, recommended_search_depth
from repro.topology.builder import NetworkBuilder
from repro.topology.isomorphism import isomorphic_up_to_port_offsets, match_networks


def _labeled(net, mapper="h0", depth=None, **kwargs):
    depth = depth or recommended_search_depth(net, mapper)
    svc = QuiescentProbeService(net, mapper)
    return LabeledMapper(svc, search_depth=depth, host_first=False, **kwargs).run()


class TestSimplifiedAlgorithm:
    def test_single_switch(self, tiny_net):
        result = _labeled(tiny_net)
        assert match_networks(result.network, tiny_net)

    def test_two_switch_parallel_wires(self, two_switch_net):
        result = _labeled(two_switch_net)
        report = match_networks(result.network, two_switch_net)
        assert report, report.reason

    def test_ring_merges_to_fixed_point(self, ring_net):
        result = _labeled(ring_net)
        assert match_networks(result.network, ring_net)
        assert result.n_labels_final < result.n_labels_initial
        assert result.merge_rounds >= 2  # at least one productive round

    def test_f_region_pruned(self, bridge_net):
        result = _labeled(bridge_net)
        assert match_networks(result.network, core_network(bridge_net))

    def test_tree_is_full_probe_tree(self, tiny_net):
        """Unlike the production mapper, the tree keeps every replicate."""
        result = _labeled(tiny_net)
        # Tree: h0 + root switch + 2 sibling hosts + their replicated
        # switch vertices... at minimum more vertices than actual nodes.
        assert result.tree_size >= 4

    def test_tree_size_guard(self, ring_net):
        svc = QuiescentProbeService(ring_net, "h0")
        mapper = LabeledMapper(
            svc, search_depth=8, host_first=False, max_tree_size=5
        )
        with pytest.raises(MappingError, match="exponential"):
            mapper.run()


class TestAgreement:
    """M/L from the simplified algorithm == the production mapper's output
    (both isomorphic to the same core, hence to each other)."""

    @pytest.mark.parametrize(
        "fixture_name", ["tiny_net", "two_switch_net", "ring_net", "bridge_net"]
    )
    def test_same_map_both_algorithms(self, fixture_name, request):
        net = request.getfixturevalue(fixture_name)
        depth = recommended_search_depth(net, "h0")
        labeled = _labeled(net, depth=depth)
        svc = QuiescentProbeService(net, "h0")
        production = BerkeleyMapper(
            svc, search_depth=depth, host_first=False
        ).run()
        assert isomorphic_up_to_port_offsets(labeled.network, production.network)

    def test_production_uses_fewer_probes(self, ring_net):
        depth = recommended_search_depth(ring_net, "h0")
        labeled = _labeled(ring_net, depth=depth)
        svc = QuiescentProbeService(ring_net, "h0")
        production = BerkeleyMapper(
            svc, search_depth=depth, host_first=False
        ).run()
        assert production.stats.total_probes < labeled.stats.total_probes


class TestCutThroughTheoremSide:
    def test_cut_through_empty_f(self, ring_net):
        """Theorem 1 second sentence: cut-through + F empty -> M/L iso N."""
        svc = QuiescentProbeService(
            ring_net, "h0", collision=CutThroughModel(slack_hops=1)
        )
        depth = recommended_search_depth(ring_net, "h0")
        result = LabeledMapper(svc, search_depth=depth, host_first=False).run()
        assert match_networks(result.network, ring_net)
