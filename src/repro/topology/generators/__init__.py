"""Topology generators.

- :mod:`~repro.topology.generators.now` — the Berkeley NOW subclusters A, B,
  C with the paper's exact component counts and irregularities, plus the
  composition used for the C+A and C+A+B experiments.
- :mod:`~repro.topology.generators.fattree` — parametric (incomplete) fat
  trees in the NOW style.
- :mod:`~repro.topology.generators.regular` — rings, chains, meshes, tori,
  hypercubes, stars: the "static, well-defined" topologies the introduction
  contrasts with.
- :mod:`~repro.topology.generators.random_topo` — seeded random connected
  SANs for property-based testing.
"""

from repro.topology.generators.now import (
    NOW_EXPECTED_COMPONENTS,
    build_full_now,
    build_subcluster,
    combine_subclusters,
)
from repro.topology.generators.fattree import (
    build_fat_tree,
    build_three_tier_fat_tree,
    three_tier_counts,
)
from repro.topology.generators.regular import (
    build_chain,
    build_hypercube,
    build_mesh,
    build_ring,
    build_star,
    build_torus,
)
from repro.topology.generators.random_topo import random_san

__all__ = [
    "NOW_EXPECTED_COMPONENTS",
    "build_chain",
    "build_fat_tree",
    "build_full_now",
    "build_hypercube",
    "build_mesh",
    "build_ring",
    "build_star",
    "build_subcluster",
    "build_three_tier_fat_tree",
    "build_torus",
    "combine_subclusters",
    "random_san",
    "three_tier_counts",
]
