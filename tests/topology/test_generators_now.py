"""The NOW generators must reproduce the paper's Figure 3 counts exactly."""

import pytest

from repro.topology.analysis import diameter, separated_set
from repro.topology.generators import (
    NOW_EXPECTED_COMPONENTS,
    build_full_now,
    build_subcluster,
    combine_subclusters,
)
from repro.topology.model import TopologyError


class TestSubclusters:
    @pytest.mark.parametrize("name", ["A", "B", "C"])
    def test_component_counts_match_figure3(self, name):
        net = build_subcluster(name)
        assert (net.n_hosts, net.n_switches, net.n_wires) == (
            NOW_EXPECTED_COMPONENTS[name]
        )

    @pytest.mark.parametrize("name", ["A", "B", "C"])
    def test_connected_and_valid(self, name):
        net = build_subcluster(name)
        net.validate(require_connected=True)

    @pytest.mark.parametrize("name", ["A", "B", "C"])
    def test_three_switch_levels(self, name):
        net = build_subcluster(name)
        levels = {net.meta(s)["level"] for s in net.switches}
        assert levels == {"leaf", "l2", "root"}

    @pytest.mark.parametrize("name", ["A", "B", "C"])
    def test_utility_host_on_root(self, name):
        net = build_subcluster(name)
        svc = f"{name}-svc"
        assert net.meta(svc).get("utility") is True
        attach = net.host_attachment(svc)
        assert net.meta(attach.node)["level"] == "root"

    def test_c_middle_leaf_irregularity(self):
        """Figure 4: the middle first-level switch has 2 uplinks, not 3."""
        net = build_subcluster("C")
        uplinks = {
            leaf: sum(
                1
                for w in net.wires_of(leaf)
                if net.is_switch(w.other_end(_end_on(w, leaf)).node)
            )
            for leaf in net.switches
            if net.meta(leaf)["level"] == "leaf"
        }
        assert sorted(uplinks.values()) == [2, 3, 3, 3, 3, 3, 3]

    @pytest.mark.parametrize("name", ["A", "B", "C"])
    def test_spare_ports_on_upper_levels(self, name):
        """Figure 4: 'there are unused switch ports on all level 2 and 3
        switches, leaving room for additional switches.'"""
        net = build_subcluster(name)
        roots = [s for s in net.switches if net.meta(s)["level"] == "root"]
        assert all(net.free_ports(r) for r in roots)

    @pytest.mark.parametrize("name", ["A", "B", "C"])
    def test_empty_f_set(self, name):
        """Every NOW switch lies on a host-to-host path: F is empty."""
        assert separated_set(build_subcluster(name)) == set()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_subcluster("D")

    @pytest.mark.parametrize("name", ["A", "B", "C"])
    def test_hosts_in_groups_of_at_most_five(self, name):
        net = build_subcluster(name)
        for leaf in net.switches:
            if net.meta(leaf)["level"] != "leaf":
                continue
            n_hosts = sum(
                1
                for w in net.wires_of(leaf)
                if net.is_host(w.other_end(_end_on(w, leaf)).node)
            )
            assert 1 <= n_hosts <= 5


class TestComposition:
    def test_c_plus_a(self):
        net = combine_subclusters("C", "A")
        assert net.n_hosts == 36 + 34
        assert net.n_switches == 13 + 13
        assert net.n_wires == 64 + 64  # cable count conserved

    def test_full_now_matches_abstract(self):
        net = build_full_now()
        assert (net.n_hosts, net.n_switches, net.n_wires) == (100, 40, 193)
        net.validate(require_connected=True)

    def test_full_now_diameter_reasonable(self):
        assert 6 <= diameter(build_full_now()) <= 10

    def test_composition_is_connected_across_subclusters(self):
        net = combine_subclusters("C", "A")
        import networkx as nx

        g = nx.Graph(net.to_networkx())
        assert nx.has_path(g, "C-n00", "A-n00")

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError):
            combine_subclusters()

    def test_single_subcluster_composition(self):
        net = combine_subclusters("B")
        assert (net.n_hosts, net.n_switches, net.n_wires) == (30, 14, 65)


def _end_on(wire, node):
    return wire.a if wire.a.node == node else wire.b
