"""Plain-text table rendering shared by the experiment modules.

Deliberately dependency-free: the harness prints the same rows the paper's
tables contain, aligned, with a ``paper`` column next to each ``ours``
column where the paper published a number.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "print_table", "ratio"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Fixed-width table with a rule under the header."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers, rows, *, title=None) -> None:
    print(format_table(headers, rows, title=title))
    print()


def ratio(ours: float, paper: float) -> str:
    """'ours/paper' ratio cell, guarded against zero."""
    if paper == 0:
        return "n/a"
    return f"{ours / paper:.2f}x"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)
