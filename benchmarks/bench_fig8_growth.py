"""Figure 8 — model graph growth during a C+A+B mapping run."""

from repro.experiments import fig8_model_growth


def test_fig8_model_growth(once, benchmark):
    exp = once(fig8_model_growth.run, "C+A+B")
    # Headlines: peak >> final; final = actual node count; frontier drains.
    assert exp.final_nodes == exp.actual_nodes == 140
    assert exp.peak_nodes > 1.5 * exp.final_nodes
    assert exp.samples[-1].n_frontier == 0
    # Edge series dominates node series at every sample (the paper's top
    # line is the edge count).
    assert all(s.n_edges >= s.n_nodes - 1 for s in exp.samples[5:])
    benchmark.extra_info["peak_model_nodes"] = exp.peak_nodes
    benchmark.extra_info["paper_peak_model_nodes"] = 750
    benchmark.extra_info["final_nodes"] = exp.final_nodes
    benchmark.extra_info["explorations"] = exp.result.explorations
