"""Tests for port-aware isomorphism (what the mapper can guarantee)."""

import pytest

from repro.topology.builder import NetworkBuilder
from repro.topology.isomorphism import (
    isomorphic_up_to_port_offsets,
    match_networks,
    networks_equal,
)


def _two_switch(port_shift: int = 0, swap_names: bool = False):
    """A small network; optionally shift all of s1's ports by a constant."""
    b = NetworkBuilder()
    s0, s1 = ("s1", "s0") if swap_names else ("s0", "s1")
    b.switches(s0, s1)
    b.hosts("h0", "h1", "h2")
    b.attach("h0", s0, port=0)
    b.attach("h1", s0, port=1)
    b.attach("h2", s1, port=(3 + port_shift))
    b.link(s0, s1, port_a=5, port_b=(0 + port_shift))
    b.link(s0, s1, port_a=6, port_b=(1 + port_shift))
    return b.build()


class TestPositive:
    def test_identical_networks(self):
        assert networks_equal(_two_switch(), _two_switch())
        assert isomorphic_up_to_port_offsets(_two_switch(), _two_switch())

    def test_port_offset_tolerated(self):
        a, b = _two_switch(0), _two_switch(2)
        assert not networks_equal(a, b)
        report = match_networks(a, b)
        assert report.isomorphic
        # The witness records the offset on the shifted switch.
        shifted = [s for s, off in report.port_offsets.items() if off]
        assert len(shifted) == 1

    def test_switch_names_ignored(self):
        assert isomorphic_up_to_port_offsets(
            _two_switch(), _two_switch(swap_names=True)
        )

    def test_witness_maps_all_switches(self):
        report = match_networks(_two_switch(), _two_switch(2))
        assert set(report.node_map) >= {"s0", "s1", "h0", "h1", "h2"}

    def test_parallel_wires_matched_individually(self, two_switch_net):
        assert isomorphic_up_to_port_offsets(two_switch_net, two_switch_net)


class TestNegative:
    def test_host_set_differs(self):
        a = _two_switch()
        b = NetworkBuilder()
        b.switch("s0").hosts("h0", "h9")
        b.attach("h0", "s0")
        b.attach("h9", "s0")
        report = match_networks(a, b.build())
        assert not report
        assert "host sets differ" in report.reason

    def test_wire_count_differs(self):
        a = _two_switch()
        b = _two_switch()
        b.disconnect(b.wire_at("s0", 6))
        report = match_networks(a, b)
        assert not report and "wire counts differ" in report.reason

    def test_host_moved_to_other_switch(self):
        a = _two_switch()
        b = NetworkBuilder()
        b.switches("s0", "s1")
        b.hosts("h0", "h1", "h2")
        b.attach("h0", "s0", port=0)
        b.attach("h2", "s0", port=1)  # h2 and h1 swapped switches
        b.attach("h1", "s1", port=3)
        b.link("s0", "s1", port_a=5, port_b=0)
        b.link("s0", "s1", port_a=6, port_b=1)
        assert not match_networks(a, b.build())

    def test_inconsistent_relative_ports(self):
        # Same counts, but the wires at s1 land at ports whose *spacing*
        # differs — no single offset can reconcile them.
        a = _two_switch()
        b = NetworkBuilder()
        b.switches("s0", "s1")
        b.hosts("h0", "h1", "h2")
        b.attach("h0", "s0", port=0)
        b.attach("h1", "s0", port=1)
        b.attach("h2", "s1", port=3)
        b.link("s0", "s1", port_a=5, port_b=0)
        b.link("s0", "s1", port_a=6, port_b=2)  # spacing 2, not 1
        assert not match_networks(a, b.build())

    def test_switch_count_differs(self):
        a = _two_switch()
        b = NetworkBuilder()
        b.switches("s0", "s1", "s2")
        b.hosts("h0", "h1", "h2")
        b.attach("h0", "s0", port=0)
        b.attach("h1", "s0", port=1)
        b.attach("h2", "s1", port=3)
        b.link("s0", "s1", port_a=5, port_b=0)
        b.link("s0", "s2")
        report = match_networks(a, b.build(validate=False))
        assert not report


class TestLoopbacks:
    def test_loopback_cable_matched(self):
        def build(shift=0):
            b = NetworkBuilder()
            b.switch("s0").hosts("h0", "h1")
            b.attach("h0", "s0", port=0 + shift)
            b.attach("h1", "s0", port=1 + shift)
            b.link("s0", "s0", port_a=4 + shift, port_b=6 + shift)
            return b.build()

        assert isomorphic_up_to_port_offsets(build(0), build(1))

    def test_loopback_position_matters(self):
        def build(pa, pb):
            b = NetworkBuilder()
            b.switch("s0").hosts("h0", "h1")
            b.attach("h0", "s0", port=0)
            b.attach("h1", "s0", port=1)
            b.link("s0", "s0", port_a=pa, port_b=pb)
            return b.build()

        assert not match_networks(build(4, 6), build(4, 5))
