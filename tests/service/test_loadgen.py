"""Load-generator tests: tenant synthesis and a real bounded burst.

The burst test is the in-suite version of the CI smoke gate: boot an
in-process server, run :func:`run_load` against it, and assert the
properties the tentpole promises — every tenant maps, route queries keep
being answered *while* remap cycles are in flight, and the report's
numbers are internally consistent.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service.loadgen import LoadReport, run_load, synthetic_tenants
from repro.service.server import MapServer
from repro.service.tenant import TenantSpec, build_tenant_network


class TestSyntheticTenants:
    def test_deterministic_for_a_seed(self):
        assert synthetic_tenants(10, seed=3) == synthetic_tenants(10, seed=3)

    def test_names_and_rotation(self):
        specs = synthetic_tenants(9, seed=0)
        assert [s.name for s in specs] == [f"tenant-{i:02d}" for i in range(9)]
        assert len({s.name for s in specs}) == 9
        # The ninth tenant wraps around the rotation.
        assert specs[8].topology == specs[0].topology

    def test_random_tenants_get_distinct_fabrics(self):
        specs = [s for s in synthetic_tenants(16, seed=5) if s.topology == "random"]
        assert len(specs) == 2
        assert specs[0].params["seed"] != specs[1].params["seed"]

    def test_every_spec_builds_a_mappable_network(self):
        for spec in synthetic_tenants(8, seed=1):
            net = build_tenant_network(spec)
            assert net.n_hosts >= 2 and net.n_switches >= 1

    def test_rejects_zero_tenants(self):
        with pytest.raises(ValueError, match="at least one"):
            synthetic_tenants(0)


class TestLoadReport:
    def test_rates_and_percentiles(self):
        report = LoadReport(tenants=2, rounds=1, wall_s=2.0)
        report.maps_completed = 3
        report.maps_failed = 1
        report.route_queries = 100
        report.map_latency_s = [0.010, 0.020, 0.030, 0.040]
        report.route_latency_s = [0.001] * 10
        assert report.maps_per_s == 2.0
        assert report.routes_per_s == 50.0
        doc = report.to_dict()
        assert doc["maps_per_s"] == 2.0
        assert doc["route_p50_ms"] == 1.0
        assert doc["map_p99_ms"] == 40.0


class TestBurst:
    def test_bounded_burst_overlaps_queries_with_remaps(self):
        specs = [
            TenantSpec(name="a", topology="ring", params={"size": 4, "hosts_per_switch": 1}),
            TenantSpec(name="b", topology="mesh", params={"size": 2, "hosts_per_switch": 1}),
            TenantSpec(name="c", topology="chain", params={"size": 3, "hosts_per_switch": 1}),
        ]

        async def run():
            with ThreadPoolExecutor(max_workers=2) as pool:
                server = MapServer(specs, executor=pool)
                host, port = await server.start()
                try:
                    return await run_load(
                        host, port, rounds=2, route_clients=2, cut=False, seed=7
                    )
                finally:
                    await server.stop()

        report = asyncio.run(run())
        assert report.tenants == 3 and report.rounds == 2
        # Every tenant remapped every round, and an unchanged fabric always
        # verifies, so nothing fails.
        assert report.maps_completed == 6
        assert report.maps_failed == 0
        # Queries were served, and some of them *while* cycles were in
        # flight — the tentpole's concurrency claim.
        assert report.route_ok > 0
        assert report.overlap_queries > 0
        assert report.route_queries == report.route_ok + report.route_misses
        assert report.wall_s > 0
        doc = report.to_dict()
        assert doc["maps_completed"] == 6
        assert doc["route_p99_ms"] >= doc["route_p50_ms"]

    def test_burst_with_cuts_exercises_remap_churn(self):
        specs = [
            TenantSpec(name="a", topology="ring", params={"size": 4, "hosts_per_switch": 1}),
            TenantSpec(name="b", topology="hypercube", params={"size": 3, "hosts_per_switch": 1}),
        ]

        async def run():
            with ThreadPoolExecutor(max_workers=2) as pool:
                server = MapServer(specs, executor=pool)
                host, port = await server.start()
                try:
                    report = await run_load(
                        host, port, rounds=2, route_clients=1, cut=True, seed=11
                    )
                    statuses = {
                        name: state.status for name, state in server.tenants.items()
                    }
                    return report, statuses
                finally:
                    await server.stop()

        report, statuses = asyncio.run(run())
        # Round 0 maps from scratch; round 1 cuts one cable and remaps.
        # Ring and hypercube both stay connected after one cut, so every
        # cycle adopts and both tenants end the burst healthy.
        assert report.maps_completed == 4
        assert report.maps_failed == 0
        assert statuses == {"a": "mapped", "b": "mapped"}

    def test_empty_server_is_rejected(self):
        async def run():
            server = MapServer([], executor=ThreadPoolExecutor(max_workers=1))
            host, port = await server.start()
            try:
                with pytest.raises(ValueError, match="no tenants"):
                    await run_load(host, port, rounds=1)
            finally:
                await server.stop()

        asyncio.run(run())
