"""Incremental route distribution: only push what changed.

The remapping daemon of the abstract runs *periodically*; most cycles find
small changes (one host came or went, one cable moved). Re-distributing
every host's complete table on every cycle wastes exactly the resource the
system exists to manage. This module diffs two route-table generations and
distributes only the delta:

- per host: routes added, routes changed (different turn string), routes
  withdrawn;
- hosts whose tables are untouched receive nothing;
- new hosts receive their full table; departed hosts are dropped.

The byte accounting mirrors :mod:`repro.routing.distribute` so experiments
can compare full vs incremental distribution cost directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.routing.compile_routes import RouteTable
from repro.routing.distribute import DistributionReport
from repro.simulator.path_eval import PathStatus, evaluate_route
from repro.simulator.timing import MYRINET_TIMING, TimingModel
from repro.topology.model import Network

__all__ = ["RouteTableDelta", "diff_route_tables", "distribute_incremental"]


@dataclass(slots=True)
class RouteTableDelta:
    """Changes to one host's route table between two generations."""

    host: str
    added: dict[str, tuple] = field(default_factory=dict)
    changed: dict[str, tuple] = field(default_factory=dict)
    withdrawn: list[str] = field(default_factory=list)

    @property
    def n_updates(self) -> int:
        return len(self.added) + len(self.changed) + len(self.withdrawn)

    @property
    def empty(self) -> bool:
        return self.n_updates == 0


def diff_route_tables(
    old: dict[str, RouteTable] | None, new: dict[str, RouteTable]
) -> dict[str, RouteTableDelta]:
    """Per-host deltas from ``old`` to ``new`` (None old = everything new).

    Hosts present only in ``old`` are omitted (nothing to send to a host
    that left); hosts present only in ``new`` get their full table as
    additions.
    """
    deltas: dict[str, RouteTableDelta] = {}
    old = old or {}
    for host, table in new.items():
        delta = RouteTableDelta(host)
        old_table = old.get(host)
        old_routes = old_table.routes if old_table else {}
        for dst, route in table.routes.items():
            prev = old_routes.get(dst)
            if prev is None:
                delta.added[dst] = route.turns
            elif prev.turns != route.turns:
                delta.changed[dst] = route.turns
        for dst in old_routes:
            if dst not in table.routes:
                delta.withdrawn.append(dst)
        deltas[host] = delta
    return deltas


def distribute_incremental(
    net: Network,
    mapper_host: str,
    new_tables: dict[str, RouteTable],
    old_tables: dict[str, RouteTable] | None,
    *,
    timing: TimingModel = MYRINET_TIMING,
    bytes_per_route: int = 16,
    bytes_per_withdrawal: int = 4,
) -> DistributionReport:
    """Push only the per-host deltas; hosts with empty deltas get nothing.

    Delivery runs over the mapper's *new* routes (a changed topology may
    have invalidated the old ones).
    """
    report = DistributionReport(mapper_host=mapper_host)
    deltas = diff_route_tables(old_tables, new_tables)
    mapper_table = new_tables.get(mapper_host)
    for host in sorted(deltas):
        delta = deltas[host]
        if delta.empty or host == mapper_host:
            report.delivered.append(host)
            continue
        route = mapper_table.routes.get(host) if mapper_table else None
        if route is None:
            report.failed.append(host)
            continue
        outcome = evaluate_route(net, mapper_host, route.turns)
        if outcome.status is not PathStatus.DELIVERED or outcome.delivered_to != host:
            report.failed.append(host)
            continue
        payload = (
            bytes_per_route * (len(delta.added) + len(delta.changed))
            + bytes_per_withdrawal * len(delta.withdrawn)
        )
        report.bytes_sent += payload
        report.elapsed_us += (
            timing.host_overhead_us
            + outcome.hops * timing.switch_latency_us
            + payload / timing.link_bandwidth_bytes_per_us
        )
        report.delivered.append(host)
    return report
