"""Tournament harness tests: the grid, the standings, the drift gate,
and consistency of the committed ``benchmarks/BENCH_tournament.json``."""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest

from repro.tournament import (
    FAMILIES,
    TournamentReport,
    check_report,
    family_names,
    get_family,
    load_report,
    run_tournament,
)
from repro.tournament.families import quick_family_names

BENCH = Path(__file__).resolve().parents[2] / "benchmarks" / "BENCH_tournament.json"


@pytest.fixture(scope="module")
def small_run():
    return run_tournament(
        mappers=("berkeley", "selfid"),
        families=("ring",),
        collisions=("circuit",),
        chaos=False,
    )


def test_families_cover_the_issue_grid():
    assert family_names() == ["fat-tree", "now", "random", "ring", "torus"]
    # the CI smoke grid drops only the big NOW system
    assert quick_family_names() == ["fat-tree", "random", "ring", "torus"]
    for name in family_names():
        assert get_family(name) is FAMILIES[name]
    with pytest.raises(ValueError, match="unknown family"):
        get_family("clos")


def test_small_grid_runs_and_scores(small_run):
    assert len(small_run.cells) == 2
    assert all(c.isomorphic for c in small_run.cells)
    assert all(c.probes > 0 and c.sim_ms > 0 for c in small_run.cells)
    board = small_run.leaderboard()
    assert [row["mapper"] for row in board] == ["selfid", "berkeley"]
    assert board[0]["wins"] == 1
    rendered = small_run.render()
    assert "selfid" in rendered and "standings" in rendered


def test_report_round_trips_through_dict(small_run):
    doc = small_run.to_dict()
    back = TournamentReport.from_dict(doc)
    assert back.cells == small_run.cells
    assert back.to_dict() == doc


def test_check_report_flags_probe_and_correctness_drift(small_run):
    assert check_report(small_run, small_run) == []
    drifted = TournamentReport(
        mappers=small_run.mappers,
        families=small_run.families,
        collisions=small_run.collisions,
        cells=[
            replace(c, probes=c.probes + 5) if c.mapper == "berkeley" else c
            for c in small_run.cells
        ],
    )
    problems = check_report(drifted, small_run)
    assert len(problems) == 1 and "probes" in problems[0]
    # a generous tolerance forgives the drift
    assert check_report(drifted, small_run, tolerance=0.5) == []
    wrong = TournamentReport(
        mappers=small_run.mappers,
        families=small_run.families,
        collisions=small_run.collisions,
        cells=[replace(c, isomorphic=False) for c in small_run.cells],
    )
    assert any("correctness" in p for p in check_report(wrong, small_run))


def test_check_report_requires_cells_to_exist_in_baseline(small_run):
    empty = TournamentReport(mappers=[], families=[], collisions=[])
    problems = check_report(small_run, empty)
    assert len(problems) == len(small_run.cells)
    assert all("not in baseline" in p for p in problems)
    # the reverse direction (quick grid vs full baseline) is fine
    assert check_report(empty, small_run) == []


def test_committed_baseline_is_current(small_run):
    """A fresh cell must reproduce the committed BENCH_tournament.json
    exactly — the committed file is a regression gate, so it must never
    go stale against the code."""
    baseline = load_report(BENCH)
    assert set(baseline.families) == set(family_names())
    assert len(baseline.families) >= 4
    assert len(baseline.mappers) >= 3
    assert all(c.isomorphic for c in baseline.cells)
    assert all(r.passed for r in baseline.robustness)
    assert check_report(small_run, baseline) == []


def test_chaos_robustness_rows_score_the_daemon():
    report = run_tournament(
        mappers=("berkeley",),
        families=("ring",),
        collisions=("circuit",),
        chaos=True,
    )
    assert [r.scenario for r in report.robustness] == [
        "quiet-baseline",
        "single-cut",
        "cut-then-heal",
    ]
    assert all(r.passed and r.probes > 0 for r in report.robustness)


def test_unknown_collision_is_rejected():
    with pytest.raises(ValueError, match="unknown collision"):
        run_tournament(collisions=("wormhole",), chaos=False)
