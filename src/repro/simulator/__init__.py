"""The Myrinet-like network substrate.

Everything the mapping algorithms can observe in-band is produced here:

- :mod:`~repro.simulator.turns` — turn strings over the alphabet −7…+7 and
  the probe-string algebra (switch-probe construction, reversal);
- :mod:`~repro.simulator.path_eval` — message-path evaluation per Section
  2.2 with the four failure modes;
- :mod:`~repro.simulator.collision` — the two probe-failure models of
  Section 2.3.1 (circuit and cut-through);
- :mod:`~repro.simulator.probes` — the probe service interface and
  accounting;
- :mod:`~repro.simulator.quiescent` — the quiescent-network probe service
  (the setting of the correctness proof) with a calibrated timing model;
- :mod:`~repro.simulator.stack` — composable middleware layers over the
  quiescent core (stats, caps, chaos, interference, trace bus) and the
  :func:`~repro.simulator.stack.build_service_stack` factory;
- :mod:`~repro.simulator.timing` — hardware constants and the cost model;
- :mod:`~repro.simulator.events` — a discrete-event engine;
- :mod:`~repro.simulator.occupancy` — directed-channel occupancy for
  concurrent worms (election mode, cross-traffic);
- :mod:`~repro.simulator.traffic` — background cross-traffic generation;
- :mod:`~repro.simulator.faults` — probe loss / corruption / dead links;
- :mod:`~repro.simulator.daemons` — which hosts run mapper daemons.
"""

from repro.simulator.turns import (
    TURN_MAX,
    TURN_MIN,
    Turns,
    reverse_turns,
    switch_probe_turns,
    validate_turns,
)
from repro.simulator.path_eval import (
    EvalCacheStats,
    IncrementalPathEvaluator,
    PathStatus,
    PathResult,
    ProbeInfo,
    evaluate_route,
)
from repro.simulator.collision import (
    CircuitModel,
    CollisionModel,
    CutThroughModel,
    PacketModel,
)
from repro.simulator.probes import ProbeKind, ProbeService, ProbeStats
from repro.simulator.quiescent import QuiescentProbeService
from repro.simulator.stack import (
    CapLayer,
    CountingLayer,
    InterferenceLayer,
    ProbeBudgetExceeded,
    ProbeContext,
    ProbeLayer,
    RetryLayer,
    StatsLayer,
    TraceBusLayer,
    build_service_stack,
    describe_stack,
)
from repro.simulator.timing import TimingModel, MYRINET_TIMING
from repro.simulator.faults import FaultModel

__all__ = [
    "CapLayer",
    "CircuitModel",
    "CollisionModel",
    "CountingLayer",
    "CutThroughModel",
    "EvalCacheStats",
    "FaultModel",
    "InterferenceLayer",
    "IncrementalPathEvaluator",
    "MYRINET_TIMING",
    "PacketModel",
    "PathResult",
    "PathStatus",
    "ProbeBudgetExceeded",
    "ProbeContext",
    "ProbeInfo",
    "ProbeKind",
    "ProbeLayer",
    "ProbeService",
    "ProbeStats",
    "QuiescentProbeService",
    "RetryLayer",
    "StatsLayer",
    "TimingModel",
    "TraceBusLayer",
    "TURN_MAX",
    "TURN_MIN",
    "Turns",
    "build_service_stack",
    "describe_stack",
    "reverse_turns",
    "switch_probe_turns",
    "validate_turns",
]
