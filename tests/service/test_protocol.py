"""Wire-protocol unit tests: length-prefixed JSON frames.

The codecs are exercised both synchronously (`encode_frame` /
`decode_frames` over raw buffers) and through the asyncio stream path
(`read_frame` against a fed `StreamReader`), because the failure modes
differ: a buffer parser sees truncation as "no more frames", a stream
reader must distinguish clean EOF from a peer dying mid-frame.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import protocol
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frames,
    encode_frame,
    read_frame,
)


def _reader_with(data: bytes, *, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


class TestEncodeDecode:
    def test_round_trips_structured_messages(self):
        messages = [
            {"op": "ping"},
            {"op": "route", "tenant": "t", "src": "héçö-0", "dst": "h1"},
            {"ok": True, "turns": [0, -1, 2], "nested": {"a": [None, True]}},
            [],
            "bare string",
        ]
        buffer = b"".join(encode_frame(m) for m in messages)
        decoded = []
        offset = 0
        for message, end in decode_frames(buffer):
            decoded.append(message)
            assert end > offset  # offsets strictly advance
            offset = end
        assert decoded == messages
        assert offset == len(buffer)  # nothing left unconsumed

    def test_header_is_big_endian_length(self):
        frame = encode_frame({"op": "ping"})
        length = int.from_bytes(frame[:4], "big")
        assert length == len(frame) - 4
        assert json.loads(frame[4:]) == {"op": "ping"}

    def test_partial_tail_is_left_for_the_next_read(self):
        whole = encode_frame({"n": 1})
        buffer = whole + encode_frame({"n": 2})[:-3]  # second frame truncated
        results = list(decode_frames(buffer))
        assert [m for m, _ in results] == [{"n": 1}]
        assert results[0][1] == len(whole)

    def test_oversize_payload_is_rejected_at_encode_time(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 16)
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"payload": "x" * 64})

    def test_oversize_declared_length_is_rejected_before_buffering(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 16)
        huge = (1 << 30).to_bytes(4, "big") + b"GET " # an HTTP peer, say
        with pytest.raises(ProtocolError, match="ceiling"):
            list(decode_frames(huge))

    def test_non_json_payload_is_a_protocol_error(self):
        frame = (3).to_bytes(4, "big") + b"}{x"
        with pytest.raises(ProtocolError, match="not JSON"):
            list(decode_frames(frame))

    def test_real_ceiling_is_generous_but_finite(self):
        assert MAX_FRAME_BYTES == 32 * 1024 * 1024


class TestReadFrame:
    def test_reads_back_to_back_frames_then_clean_eof(self):
        async def run():
            reader = _reader_with(
                encode_frame({"op": "ping"}) + encode_frame({"op": "stats"})
            )
            assert await read_frame(reader) == {"op": "ping"}
            assert await read_frame(reader) == {"op": "stats"}
            return await read_frame(reader)

        assert asyncio.run(run()) is None  # EOF at a frame boundary

    def test_eof_mid_header_is_a_protocol_error(self):
        async def run():
            reader = _reader_with(b"\x00\x00")
            with pytest.raises(ProtocolError, match="mid-header"):
                await read_frame(reader)

        asyncio.run(run())

    def test_eof_mid_frame_is_a_protocol_error(self):
        async def run():
            reader = _reader_with(encode_frame({"op": "ping"})[:-2])
            with pytest.raises(ProtocolError, match="mid-frame"):
                await read_frame(reader)

        asyncio.run(run())

    def test_oversize_declared_length_never_buffers(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 16)

        async def run():
            reader = _reader_with((1 << 30).to_bytes(4, "big"), eof=False)
            with pytest.raises(ProtocolError, match="ceiling"):
                await read_frame(reader)

        asyncio.run(run())

    def test_malformed_json_payload_is_a_protocol_error(self):
        async def run():
            reader = _reader_with((5).to_bytes(4, "big") + b"notjs")
            with pytest.raises(ProtocolError, match="not JSON"):
                await read_frame(reader)

        asyncio.run(run())
