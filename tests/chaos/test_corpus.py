"""Corpus tests: artifact round-trips and the committed regression grid.

``test_committed_corpus_replays_green`` is the chaos-smoke gate: the 21
artifacts under ``tests/chaos/corpus/`` (63 cells) must replay exactly —
same verdicts, same final-map digests — on every supported Python. The
incremental variant replays the same grid under the daemon's delta-seeded
arm: oracle verdicts must agree (digests may not — a seeded map is
isomorphic to, not byte-identical with, the from-scratch one).
"""

import json
from pathlib import Path

import pytest

from repro.chaos.corpus import (
    artifact_from_cells,
    load_artifact,
    load_corpus,
    replay_artifact,
    save_artifact,
)
from repro.chaos.runner import demo_campaign, run_cell
from repro.chaos.scenario import Scenario, ScenarioError, cut

CORPUS_DIR = Path(__file__).parent / "corpus"
RING6 = {"kind": "ring", "size": 6}


class TestArtifactMechanics:
    def _cell(self):
        return run_cell(
            Scenario("art", (cut(1, "ring-s2", 1),), seed=8), RING6, 0
        )

    def test_roundtrip_through_disk(self, tmp_path):
        artifact = artifact_from_cells("art", [self._cell()])
        path = save_artifact(tmp_path / "art.json", artifact)
        assert load_artifact(path) == artifact

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ScenarioError, match="schema"):
            load_artifact(path)

    def test_replay_of_fresh_recording_is_green(self):
        cell = self._cell()
        artifact = artifact_from_cells("art", [cell])
        assert replay_artifact(artifact) == []

    def test_replay_detects_a_digest_change(self):
        cell = self._cell()
        artifact = artifact_from_cells("art", [cell])
        artifact["cells"][0]["map_digest"] = "0" * 16
        problems = replay_artifact(artifact)
        assert any("digest" in p for p in problems)

    def test_replay_detects_a_verdict_flip(self):
        cell = self._cell()
        artifact = artifact_from_cells("art", [cell])
        artifact["cells"][0]["verdicts"]["quotient_map"] = False
        problems = replay_artifact(artifact)
        assert any("quotient_map" in p for p in problems)

    def test_no_artifact_without_cells(self):
        with pytest.raises(ValueError, match="at least one cell"):
            artifact_from_cells("empty", [])


class TestCommittedCorpus:
    def test_corpus_covers_the_demo_grid(self):
        artifacts = load_corpus(CORPUS_DIR)
        assert len(artifacts) == 21
        cells = sum(len(a["cells"]) for a in artifacts)
        assert cells >= 50  # the acceptance floor (actual: 60)
        names = {a["scenario"]["name"] for a in artifacts}
        assert names == {s.name for s in demo_campaign().scenarios}

    def test_every_artifact_is_seeded_and_green(self):
        for artifact in load_corpus(CORPUS_DIR):
            assert isinstance(artifact["scenario"]["seed"], int)
            for cell in artifact["cells"]:
                assert cell["map_digest"]
                assert all(cell["verdicts"].values()), artifact["name"]

    def test_committed_corpus_replays_green(self):
        """The long gate: every committed cell re-runs bit-for-bit."""
        problems = []
        for artifact in load_corpus(CORPUS_DIR):
            problems.extend(replay_artifact(artifact))
        assert problems == []

    def test_committed_corpus_replays_green_incrementally(self):
        """The incremental arm reaches the same oracle verdicts on every
        committed cell — seeded remaps change probe counts and switch
        numbering, never outcomes. Determinism re-runs are skipped here;
        the plain gate above already proves the cells deterministic."""
        problems = []
        for artifact in load_corpus(CORPUS_DIR):
            problems.extend(
                replay_artifact(
                    artifact, incremental=True, check_determinism=False
                )
            )
        assert problems == []
