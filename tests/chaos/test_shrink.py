"""Shrinker tests, including the acceptance-criteria demonstration:

a deliberately injected mapper bug (the ``buggy_mapper_factory`` fixture) is
caught by an oracle and the failing schedule shrinks to at most 5 events.
"""

import pytest

from repro.chaos.corpus import artifact_from_shrink, replay_artifact
from repro.chaos.runner import demo_scenarios, run_cell
from repro.chaos.scenario import Scenario, cut, drop, heal, kill_host
from repro.chaos.shrink import shrink_failure

RING6 = {"kind": "ring", "size": 6}


def test_shrinking_a_passing_cell_is_an_error():
    cell = run_cell(Scenario("ok", (), seed=1), RING6, 0)
    assert cell.passed
    with pytest.raises(ValueError, match="failing cell"):
        shrink_failure(cell)


class TestInjectedBugDemonstration:
    def _fail(self, scenario, factory):
        cell = run_cell(
            scenario, RING6, 0, check_determinism=False,
            mapper_factory=factory,
        )
        assert not cell.passed, "the injected bug must be caught"
        return cell

    def test_oracle_catches_the_bug(self, buggy_mapper_factory):
        cell = self._fail(
            Scenario("one-cut", (cut(1, "ring-s3", 1),), seed=9),
            buggy_mapper_factory,
        )
        assert "quotient_map" in cell.failing

    def test_compound_failure_shrinks_to_at_most_5_events(
        self, buggy_mapper_factory
    ):
        compound = next(
            s for s in demo_scenarios() if s.name == "compound-failure"
        )
        cell = self._fail(compound, buggy_mapper_factory)
        shrunk = shrink_failure(cell, mapper_factory=buggy_mapper_factory)
        assert shrunk.n_events <= 5
        assert shrunk.final is not None and not shrunk.final.passed
        assert set(shrunk.failing) & set(cell.failing)

    def test_noise_is_stripped_down_to_the_trigger(self, buggy_mapper_factory):
        """Seven events of noise around one live cut shrink to ~the cut."""
        noisy = Scenario(
            "noisy",
            (
                drop(0, 0.05),
                drop(1, 0.0),
                cut(1, "ring-s2", 1),
                heal(2, "ring-s2", 1),
                cut(2, "ring-s4", 1),   # the persisting trigger
                kill_host(3, "ring-n005"),
                drop(3, 0.0),
            ),
            seed=13,
        )
        cell = self._fail(noisy, buggy_mapper_factory)
        shrunk = shrink_failure(cell, mapper_factory=buggy_mapper_factory)
        assert shrunk.n_events <= 2
        assert shrunk.runs <= 150  # the default budget is respected

    def test_shrunk_failure_promotes_to_a_replayable_artifact(
        self, buggy_mapper_factory
    ):
        cell = self._fail(
            Scenario("promote", (cut(1, "ring-s3", 1),), seed=21),
            buggy_mapper_factory,
        )
        shrunk = shrink_failure(cell, mapper_factory=buggy_mapper_factory)
        artifact = artifact_from_shrink("bug-regression", shrunk)
        assert artifact["expect_failing"]
        # Replayed against the still-buggy mapper: green (bug still bites).
        assert (
            replay_artifact(artifact, mapper_factory=buggy_mapper_factory)
            == []
        )
        # Replayed against the fixed (real) mapper: the artifact reports
        # the failure no longer reproduces, prompting its retirement.
        problems = replay_artifact(artifact)
        assert any("retire" in p for p in problems)


class TestShrinkMechanics:
    def test_topology_shrinks_too(self, buggy_mapper_factory):
        cell = run_cell(
            Scenario("t", (cut(1, "ring-s4", 1),), seed=2),
            RING6,
            0,
            check_determinism=False,
            mapper_factory=buggy_mapper_factory,
        )
        assert not cell.passed
        shrunk = shrink_failure(cell, mapper_factory=buggy_mapper_factory)
        assert shrunk.topology["size"] < 6

    def test_to_dict_records_the_reduction(self, buggy_mapper_factory):
        compound = next(
            s for s in demo_scenarios() if s.name == "compound-failure"
        )
        cell = run_cell(
            compound, RING6, 0, check_determinism=False,
            mapper_factory=buggy_mapper_factory,
        )
        shrunk = shrink_failure(cell, mapper_factory=buggy_mapper_factory)
        doc = shrunk.to_dict()
        assert doc["original_events"] == 5
        assert doc["shrunk_events"] <= doc["original_events"]
        assert doc["failing"]
