"""ScenarioApplier tests: coherence rules and epoch bookkeeping."""

import pytest

from repro.chaos.apply import ScenarioApplier
from repro.chaos.scenario import ChaosEvent, ScenarioError
from repro.simulator.faults import FaultModel
from repro.topology.generators import build_ring


@pytest.fixture()
def rig():
    net = build_ring(4)
    faults = FaultModel(seed=0)
    return net, faults, ScenarioApplier(net, faults)


def _ev(action, *args):
    return ChaosEvent(0, action, args)


class TestCutHeal:
    def test_cut_marks_the_cable_dead(self, rig):
        net, faults, applier = rig
        wire = net.wire_at("ring-s0", 1)
        applier.apply(_ev("cut", "ring-s0", 1))
        assert frozenset((wire.a, wire.b)) in faults.dead_wires
        assert faults.fault_epoch == 1

    def test_heal_restores(self, rig):
        net, faults, applier = rig
        applier.apply(_ev("cut", "ring-s0", 1))
        applier.apply(_ev("heal", "ring-s0", 1))
        assert not faults.dead_wires

    def test_double_cut_rejected(self, rig):
        _, _, applier = rig
        applier.apply(_ev("cut", "ring-s0", 1))
        with pytest.raises(ScenarioError, match="already cut"):
            applier.apply(_ev("cut", "ring-s0", 1))

    def test_heal_of_uncut_rejected(self, rig):
        _, _, applier = rig
        with pytest.raises(ScenarioError, match="not cut"):
            applier.apply(_ev("heal", "ring-s0", 1))

    def test_cut_of_empty_port_rejected(self, rig):
        _, _, applier = rig
        with pytest.raises(ScenarioError, match="no cable"):
            applier.apply(_ev("cut", "ring-s0", 7))


class TestKillRevive:
    def test_kill_switch_silences_every_cable(self, rig):
        net, faults, applier = rig
        applier.apply(_ev("kill_switch", "ring-s1"))
        expected = {
            frozenset((w.a, w.b)) for w in net.wires_of("ring-s1")
        }
        assert faults.dead_wires == frozenset(expected)
        assert len(expected) == 3  # two ring cables + the host drop

    def test_revive_resurrects_exactly_current_cables(self, rig):
        net, faults, applier = rig
        applier.apply(_ev("kill_switch", "ring-s1"))
        applier.apply(_ev("revive_switch", "ring-s1"))
        assert not faults.dead_wires

    def test_kill_unknown_node_rejected(self, rig):
        _, _, applier = rig
        with pytest.raises(ScenarioError, match="no such node"):
            applier.apply(_ev("kill_host", "ghost"))

    def test_revive_of_living_rejected(self, rig):
        _, _, applier = rig
        with pytest.raises(ScenarioError, match="not dead"):
            applier.apply(_ev("revive_host", "ring-n000"))

    def test_cut_survives_unrelated_revive(self, rig):
        net, faults, applier = rig
        wire = net.wire_at("ring-s0", 1)
        applier.apply(_ev("cut", "ring-s0", 1))
        applier.apply(_ev("kill_host", "ring-n002"))
        applier.apply(_ev("revive_host", "ring-n002"))
        assert faults.dead_wires == frozenset({frozenset((wire.a, wire.b))})


class TestStructuralEvents:
    def test_unplug_bumps_topology_epoch(self, rig):
        net, faults, applier = rig
        before = net.topology_epoch
        applier.apply(_ev("unplug", "ring-s0", 1))
        assert net.topology_epoch > before
        assert net.wire_at("ring-s0", 1) is None

    def test_unplug_clears_a_cut_on_the_same_cable(self, rig):
        net, faults, applier = rig
        applier.apply(_ev("cut", "ring-s0", 1))
        applier.apply(_ev("unplug", "ring-s0", 1))
        assert not faults.dead_wires  # gone is gone, not silently dead

    def test_plug_onto_killed_switch_is_born_dead(self, rig):
        net, faults, applier = rig
        applier.apply(_ev("kill_switch", "ring-s2"))
        dead_before = set(faults.dead_wires)
        applier.apply(_ev("plug", "ring-s0", 3, "ring-s2", 3))
        new_wire = net.wire_at("ring-s0", 3)
        assert frozenset((new_wire.a, new_wire.b)) in faults.dead_wires
        assert len(faults.dead_wires) == len(dead_before) + 1

    def test_plug_occupied_port_rejected(self, rig):
        _, _, applier = rig
        with pytest.raises(ScenarioError, match="cannot apply"):
            applier.apply(_ev("plug", "ring-s0", 1, "ring-s2", 3))


class TestProbabilisticEvents:
    def test_ramps_hit_the_fault_model(self, rig):
        _, faults, applier = rig
        applier.apply(_ev("drop", 0.4))
        applier.apply(_ev("corrupt", 0.1))
        assert faults.drop_prob == 0.4
        assert faults.corrupt_prob == 0.1
        assert faults.fault_epoch == 2
