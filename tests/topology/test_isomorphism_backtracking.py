"""Isomorphism fallback paths: host-free switch clusters need backtracking.

Host-anchored propagation covers every switch on a path between hosts; a
network that still contains its F region (host-free switch clusters behind
switch-bridges) exercises the exhaustive-assignment fallback.
"""

from repro.topology.builder import NetworkBuilder
from repro.topology.isomorphism import match_networks


def _with_pendant(pendant_ports=(0, 3), tail_port=5):
    """Core (one switch, two hosts) plus a host-free two-switch pendant."""
    b = NetworkBuilder()
    b.switches("core", "f0", "f1")
    b.hosts("h0", "h1")
    b.attach("h0", "core", port=0)
    b.attach("h1", "core", port=1)
    b.link("core", "f0", port_a=6, port_b=pendant_ports[0])
    b.link("f0", "f1", port_a=pendant_ports[1], port_b=tail_port)
    return b.build()


class TestBacktracking:
    def test_identical_pendants_match(self):
        assert match_networks(_with_pendant(), _with_pendant())

    def test_pendant_port_offsets_tolerated(self):
        a = _with_pendant(pendant_ports=(0, 3), tail_port=5)
        b = _with_pendant(pendant_ports=(2, 5), tail_port=1)
        report = match_networks(a, b)
        assert report, report.reason

    def test_pendant_spacing_mismatch_rejected(self):
        a = _with_pendant(pendant_ports=(0, 3))
        # Spacing between the two f0 ports differs (3 vs 4): no offset fits.
        b = _with_pendant(pendant_ports=(0, 4))
        assert not match_networks(a, b)

    def test_pendant_length_mismatch_rejected(self):
        a = _with_pendant()
        b = NetworkBuilder()
        b.switches("core", "f0", "fX")
        b.hosts("h0", "h1")
        b.attach("h0", "core", port=0)
        b.attach("h1", "core", port=1)
        b.link("core", "f0", port_a=6, port_b=0)
        b.link("core", "fX", port_a=7, port_b=0)  # star, not chain
        assert not match_networks(a, b.build())

    def test_two_identical_pendants_permuted(self):
        """Two interchangeable host-free pendants: the matcher must find
        the permutation."""

        def build(order):
            b = NetworkBuilder()
            b.switches("core", *order)
            b.hosts("h0", "h1")
            b.attach("h0", "core", port=0)
            b.attach("h1", "core", port=1)
            b.link("core", order[0], port_a=6, port_b=2)
            b.link("core", order[1], port_a=7, port_b=2)
            return b.build()

        assert match_networks(build(("p", "q")), build(("q", "p")))
