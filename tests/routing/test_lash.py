"""LASH layered shortest-path routing tests."""

import networkx as nx
import pytest

from repro.routing.compile_routes import compile_route_tables
from repro.routing.deadlock import channel_dependency_graph, routes_deadlock_free
from repro.routing.lash import lash_route_tables
from repro.routing.paths import all_pairs_updown_paths
from repro.routing.quality import analyze_routes
from repro.routing.updown import orient_updown
from repro.simulator.path_eval import PathStatus, evaluate_route
from repro.topology.generators import build_hypercube, build_ring, build_torus


class TestCorrectness:
    @pytest.mark.parametrize(
        "net_builder",
        [
            lambda: build_ring(6, hosts_per_switch=1),
            lambda: build_torus(3, 3, hosts_per_switch=1),
            lambda: build_hypercube(3, hosts_per_switch=1),
        ],
    )
    def test_all_pairs_routed_and_deliver(self, net_builder):
        net = net_builder()
        routing = lash_route_tables(net)
        hosts = sorted(net.hosts)
        for src in hosts:
            for dst in hosts:
                if src == dst:
                    continue
                route = routing.tables[src].routes[dst]
                out = evaluate_route(net, src, route.turns)
                assert out.status is PathStatus.DELIVERED
                assert out.delivered_to == dst

    def test_every_layer_is_deadlock_free(self, ring_net):
        routing = lash_route_tables(ring_net)
        for layer in range(routing.n_layers):
            routes = routing.layer_routes(layer)
            assert routes_deadlock_free(routes), f"layer {layer} cyclic"

    def test_routes_are_shortest(self, ring_net):
        """LASH's whole point: zero path inflation."""
        g = nx.Graph(ring_net.to_networkx())
        routing = lash_route_tables(ring_net)
        for src, table in routing.tables.items():
            plain = nx.single_source_shortest_path_length(g, src)
            for dst, route in table.routes.items():
                assert route.hops == plain[dst]

    def test_layer_assignment_covers_all_pairs(self, ring_net):
        routing = lash_route_tables(ring_net)
        hosts = sorted(ring_net.hosts)
        assert set(routing.layer_of) == {
            (s, d) for s in hosts for d in hosts if s != d
        }

    def test_deterministic_per_seed(self, ring_net):
        a = lash_route_tables(ring_net, seed=5)
        b = lash_route_tables(ring_net, seed=5)
        assert a.layer_of == b.layer_of

    def test_layer_cap_enforced(self, ring_net):
        with pytest.raises(ValueError, match="layers"):
            lash_route_tables(ring_net, max_layers=0)


class TestVersusUpDown:
    def test_ring_needs_layers_but_wins_on_length(self):
        """On a ring, UP*/DOWN* inflates paths (the dead label-max edge);
        LASH keeps them minimal at the price of >= 2 virtual layers."""
        net = build_ring(8, hosts_per_switch=1)
        routing = lash_route_tables(net)
        assert routing.n_layers >= 2  # minimal ring routes must deadlock in one layer

        ori = orient_updown(net)
        paths = all_pairs_updown_paths(net, ori)
        ud_tables = compile_route_tables(net, paths, orientation=ori)
        ud_quality = analyze_routes(net, ud_tables, ori)
        assert ud_quality.max_path_inflation > 1.0

        lash_quality = analyze_routes(net, routing.tables)
        assert lash_quality.max_path_inflation == 1.0

    def test_tree_like_needs_one_layer(self, subcluster_c):
        """On the NOW fat tree shortest paths barely conflict: LASH should
        need very few layers."""
        routing = lash_route_tables(subcluster_c)
        assert routing.n_layers <= 2
