"""Rendering smoke tests (Figures 4/5 output paths)."""

from repro.topology.render import summary_line, to_ascii, to_dot


class TestAscii:
    def test_summary_line(self, two_switch_net):
        assert summary_line(two_switch_net) == "4 interfaces, 2 switches, 6 links"

    def test_ascii_contains_every_node(self, two_switch_net):
        text = to_ascii(two_switch_net, title="test")
        for node in two_switch_net.nodes:
            assert node in text
        assert "== test ==" in text

    def test_ascii_port_cells(self, tiny_net):
        text = to_ascii(tiny_net)
        assert "0:h0.0" in text
        assert "7:h2.0" in text
        assert "1:-" in text  # free port

    def test_deterministic(self, two_switch_net):
        assert to_ascii(two_switch_net) == to_ascii(two_switch_net.copy())


class TestDot:
    def test_dot_is_well_formed(self, two_switch_net):
        dot = to_dot(two_switch_net)
        assert dot.startswith('graph "san-map"')
        assert dot.rstrip().endswith("}")
        assert dot.count("--") == two_switch_net.n_wires

    def test_dot_switch_records_have_ports(self, tiny_net):
        dot = to_dot(tiny_net)
        assert "<p0> 0" in dot and "<p7> 7" in dot

    def test_dot_host_shape(self, tiny_net):
        assert '"h0" [shape=ellipse]' in to_dot(tiny_net)


class TestLayered:
    def test_levels_by_host_distance(self, subcluster_c):
        from repro.topology.render import to_layered_ascii

        text = to_layered_ascii(subcluster_c, title="C")
        assert "== C ==" in text
        assert "level 1:" in text and "level 3:" in text
        # Leaf switches list their hosts as "down".
        assert "down: C-n00 C-n01 C-n02 C-n03 C-n04" in text
        # The secondary root is the deepest switch.
        lines = text.splitlines()
        lvl3 = lines.index("level 3:")
        assert "C-root-1" in lines[lvl3 + 1]

    def test_works_on_mapper_output(self, mapped_c):
        from repro.topology.render import to_layered_ascii

        text = to_layered_ascii(mapped_c.network)
        assert "level 1:" in text
        assert "C-svc" in text

    def test_unreachable_nodes_flagged(self):
        from repro.topology.builder import NetworkBuilder
        from repro.topology.render import to_layered_ascii

        b = NetworkBuilder()
        b.switch("s0").switch("lonely")
        b.hosts("h0", "h1")
        b.attach("h0", "s0")
        b.attach("h1", "s0")
        text = to_layered_ascii(b.build(validate=False))
        assert "unreachable: lonely" in text
