"""WL signature matching against the pairwise oracle.

``match_networks(strategy="auto")`` refines both networks into canonical
signature classes (iterative Weisfeiler-Leman-style coloring) to refute
mismatches without search and to prune the host-free backtracking
fallback. ``strategy="pairwise"`` is the original exhaustive scan, kept
verbatim as the differential oracle: the verdicts must always agree.
"""

from __future__ import annotations

import random

import pytest

from repro.topology.builder import NetworkBuilder
from repro.topology.generators import (
    build_mesh,
    build_ring,
    build_three_tier_fat_tree,
    build_torus,
    random_san,
)
from repro.topology.isomorphism import match_networks
from repro.topology.model import Network, TopologyError


def _shifted_copy(net: Network, rng: random.Random) -> Network:
    """Same wiring with a random per-switch port offset (legal by radix)."""
    out = Network()
    shift: dict[str, int] = {}
    for s in net.switches:
        out.add_switch(s, radix=net.radix(s))
        ports = net.used_ports(s)
        lo = min(ports) if ports else 0
        hi = max(ports) if ports else 0
        shift[s] = rng.randint(-lo, net.radix(s) - 1 - hi)
    for h in net.hosts:
        out.add_host(h)
        shift[h] = 0
    for w in net.wires:
        out.connect(
            w.a.node, w.a.port + shift[w.a.node],
            w.b.node, w.b.port + shift[w.b.node],
        )
    return out


def _assert_verdicts_agree(model: Network, actual: Network) -> None:
    auto = match_networks(model, actual, strategy="auto")
    oracle = match_networks(model, actual, strategy="pairwise")
    assert auto.isomorphic == oracle.isomorphic, (
        auto.reason, oracle.reason
    )
    if auto.isomorphic:
        # Each strategy may pick a different witness, but both must be
        # complete over the switch set.
        assert set(auto.node_map) == set(oracle.node_map)


class TestStrategyDispatch:
    def test_unknown_strategy_rejected(self):
        net = build_ring(4)
        with pytest.raises(ValueError, match="unknown strategy"):
            match_networks(net, net, strategy="wl")

    def test_wl_refutes_without_search(self):
        """Structurally different same-size networks die in the class
        prefilter with a signature-specific reason."""
        a = build_mesh(2, 3)
        b = build_ring(6)
        report = match_networks(a, b, strategy="auto")
        assert not report


class TestMergeHeavyRegularTopologies:
    """The regular families are the merge-heaviest maps the repo builds:
    every switch looks locally alike, so signatures must separate them by
    structure alone."""

    @pytest.mark.parametrize("build", [
        lambda: build_ring(6),
        lambda: build_mesh(3, 3),
        lambda: build_torus(3, 3),
        lambda: build_three_tier_fat_tree(4),
    ])
    def test_self_match_both_strategies(self, build):
        _assert_verdicts_agree(build(), build())

    @pytest.mark.parametrize("build", [
        lambda: build_ring(6),
        lambda: build_torus(3, 3),
        lambda: build_three_tier_fat_tree(4),
    ])
    def test_port_shifted_copies_match(self, build):
        net = build()
        _assert_verdicts_agree(net, _shifted_copy(net, random.Random(7)))


class TestRandomDifferential:
    def test_random_sans_verdicts_agree(self):
        """Shifted copies (isomorphic) and independent draws (usually not):
        120 verdict pairs, zero disagreements allowed."""
        rng = random.Random(42)
        checked = 0
        for trial in range(120):
            try:
                model = random_san(
                    n_switches=rng.randint(1, 6),
                    n_hosts=rng.randint(2, 5),
                    extra_links=rng.randint(0, 4),
                    parallel_link_prob=rng.choice([0.0, 0.5]),
                    seed=rng.randint(0, 10_000),
                )
            except TopologyError:
                continue
            if trial % 2 == 0:
                actual = _shifted_copy(model, rng)
            else:
                try:
                    actual = random_san(
                        n_switches=model.n_switches,
                        n_hosts=model.n_hosts,
                        extra_links=rng.randint(0, 4),
                        parallel_link_prob=0.0,
                        seed=rng.randint(0, 10_000),
                    )
                except TopologyError:
                    continue
            _assert_verdicts_agree(model, actual)
            checked += 1
        assert checked >= 60


class TestHostFreeClusters:
    """Host-free pendants force the backtracking fallback, where the WL
    strategy searches same-class candidates under the min-aligned offset."""

    def _pendant(self, ports=(0, 3), tail=5):
        b = NetworkBuilder()
        b.switches("core", "f0", "f1")
        b.hosts("h0", "h1")
        b.attach("h0", "core", port=0)
        b.attach("h1", "core", port=1)
        b.link("core", "f0", port_a=6, port_b=ports[0])
        b.link("f0", "f1", port_a=ports[1], port_b=tail)
        return b.build()

    def test_offset_pendants_agree(self):
        _assert_verdicts_agree(
            self._pendant(ports=(0, 3), tail=5),
            self._pendant(ports=(2, 5), tail=1),
        )

    def test_spacing_mismatch_agree(self):
        _assert_verdicts_agree(
            self._pendant(ports=(0, 3)), self._pendant(ports=(0, 4))
        )

    def test_permuted_pendants_agree(self):
        def build(order):
            b = NetworkBuilder()
            b.switches("core", *order)
            b.hosts("h0", "h1")
            b.attach("h0", "core", port=0)
            b.attach("h1", "core", port=1)
            b.link("core", order[0], port_a=5, port_b=0)
            b.link("core", order[1], port_a=6, port_b=0)
            return b.build()

        _assert_verdicts_agree(build(("fa", "fb")), build(("fb", "fa")))
