"""Information-gain probe ordering for the Berkeley mapper.

The paper's Section 3.3 heuristics are *static*: the turn order
alternates outward from ±1 ("excluding turn 0, turns of +/-1 are the
best") and the entry-port window prunes turns that are guaranteed to
fail. This module makes both decisions *adaptive*, ranking work by the
discrimination it is expected to buy the model tree:

* **Turn ordering** (:class:`InfoGainPlanner`): the mapper keeps a
  cross-switch histogram of which relative turns actually hit. Each new
  :class:`~repro.core.planner.PortPlan` probes turns in descending
  posterior hit-rate (a Beta posterior whose prior encodes the paper's
  ±1-first rule, so a cold start reproduces the default order exactly).
  The final entry-port window is order-independent, but *intermediate*
  windows decide which turns get skipped as guaranteed failures —
  probing likely hits first narrows the window while unprobed turns
  remain to benefit, so on port-use-skewed fabrics the same deductions
  cost fewer probes.
* **Frontier ranking** (:meth:`InfoGainMapper._pop_frontier`): instead
  of strict FIFO, the next exploration is the shallowest frontier vertex
  with the most already-known port indices. Known indices are inherited
  from merged replicates, so such a vertex (a) explores cheaply — every
  known index is a confirmed wire that narrows its window for free — and
  (b) is the most likely to produce the host sightings that anchor
  merges (Lemma 3), killing replicate frontier entries *before* they are
  explored rather than after.

Both are deterministic given ``rng_seed``: the seed only breaks ranking
ties (via a fixed per-vertex jitter), every other input is the probe
history itself, and misses never re-rank an already-issued plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mapper import _KIND_SWITCH, BerkeleyMapper, MergedVertex
from repro.core.mapper_protocol import register_mapper
from repro.core.planner import PortPlan, _alternating_order

__all__ = ["InfoGainMapper", "InfoGainPlanner"]


class InfoGainPlanner:
    """Per-run factory for turn plans ranked by learned hit probability.

    Shared mutable state across every plan it issues: ``observe`` feeds
    the histogram, ``new_plan`` freezes the current ranking into the
    plan's turn order (a plan never re-ranks mid-flight — determinism
    and the batching ``peek_pending`` contract both depend on the order
    being fixed at creation).
    """

    def __init__(
        self, *, radix: int = 8, prior_weight: float = 2.0
    ) -> None:
        self.radix = radix
        self._prior_weight = prior_weight
        turns = [t for t in range(-(radix - 1), radix) if t != 0]
        self._hits: dict[int, int] = {t: 0 for t in turns}
        self._trials: dict[int, int] = {t: 0 for t in turns}
        # The paper's static preference, used as the Beta prior mean
        # (1/|t|) and as the tie-break so a cold start is byte-identical
        # to the default alternating order.
        self._default_rank = {
            t: i for i, t in enumerate(_alternating_order(radix))
        }

    def observe(self, turn: int, hit: bool) -> None:
        if turn not in self._trials:
            return
        self._trials[turn] += 1
        if hit:
            self._hits[turn] += 1

    def _score(self, turn: int) -> float:
        """Posterior mean hit rate with a ±1-first prior."""
        w = self._prior_weight
        prior = w / abs(turn)
        return (self._hits[turn] + prior) / (self._trials[turn] + w)

    def new_plan(self) -> PortPlan:
        order = tuple(
            sorted(
                self._default_rank,
                key=lambda t: (-self._score(t), self._default_rank[t]),
            )
        )
        return _ObservedPlan(
            radix=self.radix, use_window=True, order=order, planner=self
        )


@dataclass
class _ObservedPlan(PortPlan):
    """A ``PortPlan`` that reports outcomes back to the histogram.

    Window arithmetic is untouched — skipping stays sound ("eliminate
    probes only when we are sure they will fail"); only the order turns
    are attempted in changes.
    """

    planner: InfoGainPlanner | None = None

    def feed(self, turn: int, found_wire: bool) -> None:
        if self.planner is not None:
            self.planner.observe(turn, found_wire)
        super().feed(turn, found_wire)


@register_mapper(
    "berkeley-infogain",
    summary="Berkeley + learned turn order and discrimination-ranked frontier",
)
class InfoGainMapper(BerkeleyMapper):
    """Berkeley mapper with information-gain probe ordering.

    Same deduction engine, same soundness (any exploration interleaving
    is valid — modification 1), different spending order. Capabilities
    are inherited: seeding, batching and profiling all still apply.
    """

    def __init__(
        self,
        service,
        *,
        search_depth: int,
        rng_seed: int = 0,
        prior_weight: float = 2.0,
        radix: int = 8,
        **kwargs,
    ) -> None:
        if kwargs.get("planner") is None:
            kwargs["planner"] = InfoGainPlanner(
                radix=radix, prior_weight=prior_weight
            )
        super().__init__(
            service, search_depth=search_depth, radix=radix, **kwargs
        )
        self._rng_seed = rng_seed

    def _jitter(self, vid: int) -> int:
        """Fixed per-vertex tie-break, deterministic given ``rng_seed``."""
        return (vid * 2654435761 + self._rng_seed * 40503) % 997

    def _pop_frontier(self) -> MergedVertex:
        """Pick the frontier vertex with the best expected discrimination.

        Rank live entries by (shallowest depth, most known indices,
        seeded jitter): shallow keeps the tree small, known indices make
        the exploration cheap (pre-narrowed window) and host-dense
        (anchors merge away replicates still waiting on the frontier).
        Stale entries — dead, already explored, merged duplicates — are
        dropped during the scan so the frontier never accumulates junk.
        """
        frontier = self._frontier
        best: MergedVertex | None = None
        best_key: tuple[int, int, int, int] | None = None
        live: list[tuple[MergedVertex, object]] = []
        seen: set[int] = set()
        for entry in frontier:
            v = self._find(entry)
            if (
                v.dead
                or v.explored
                or v.kind != _KIND_SWITCH
                or v.vid in seen
            ):
                continue
            seen.add(v.vid)
            live.append((v, entry))
            key = (v.depth, -len(v.nbrs), self._jitter(v.vid), v.vid)
            if best_key is None or key < best_key:
                best, best_key = v, key
        if best is None:
            # Nothing explorable left; hand back a stale entry for the
            # main loop to discard on its own validity checks.
            return frontier.popleft()
        frontier.clear()
        frontier.extend(entry for v, entry in live if v is not best)
        return best
