"""Section 6 extension — mapping accuracy under cross-traffic."""

import math

from repro.experiments import crosstraffic_ext


def test_crosstraffic_sweep(once, benchmark):
    points = once(
        crosstraffic_ext.run,
        "C",
        rates=(0.0, 5.0, 30.0, 80.0),
        retries=(0, 2),
    )
    clean = [p for p in points if math.isclose(p.rate_msgs_per_ms, 0.0, abs_tol=1e-12)]
    assert all(p.correct and p.completeness == 1.0 for p in clean)
    # Losses only omit, never corrupt: completeness <= 1 and every produced
    # element is real (checked inside the study via isomorphism embedding).
    assert all(p.completeness <= 1.0 for p in points)
    heavy = [p for p in points if math.isclose(p.rate_msgs_per_ms, 80.0)]
    lost = {p.retries: p.probes_lost for p in heavy}
    assert lost[2] >= lost[0] * 0.5  # retries re-expose probes to traffic
    benchmark.extra_info["completeness"] = {
        (p.rate_msgs_per_ms, p.retries): round(p.completeness, 3)
        for p in points
    }
