"""Mapping under application cross-traffic (Section 6, first open problem).

"Insisting upon an idle network, especially in a general-purpose and
multi-programmed system, is at best a stop-gap measure." Section 7 adds:
"we have some evidence that the algorithm can oftentimes correctly map the
network even in the face of heavy application cross-traffic." This module
quantifies that claim:

- :class:`CrossTrafficProbeService` evaluates probes against a fabric
  pre-filled with Poisson host-pair worms
  (:class:`~repro.simulator.traffic.CrossTraffic`). A probe whose worm
  collides with traffic is destroyed by the forward reset — the mapper
  sees a timeout. Deductions stay *sound* (traffic produces missing
  answers, never wrong ones), so the failure mode is an incomplete map,
  not a wrong one — matching why the paper's algorithm "oftentimes" still
  maps correctly.
- :class:`RetryingProbeService` layers bounded retry on any probe service
  (each attempt is counted and charged), the obvious mitigation.
- :func:`crosstraffic_study` sweeps traffic intensity and reports map
  completeness vs. cost, with and without retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mapper import BerkeleyMapper, MappingError
from repro.simulator.collision import CircuitModel, CollisionModel
from repro.simulator.occupancy import ChannelOccupancy
from repro.simulator.path_eval import ProbeInfo
from repro.simulator.probes import ProbeKind, ProbeRecord, ProbeStats
from repro.simulator.quiescent import QuiescentProbeService
from repro.simulator.timing import MYRINET_TIMING, TimingModel
from repro.simulator.traffic import CrossTraffic
from repro.simulator.turns import Turns, switch_probe_turns, validate_turns
from repro.topology.analysis import core_network
from repro.topology.isomorphism import match_networks
from repro.topology.model import Network

__all__ = [
    "CrossTrafficProbeService",
    "RetryingProbeService",
    "TrafficPoint",
    "crosstraffic_study",
]


class CrossTrafficProbeService(QuiescentProbeService):
    """Probe service with background worms contending for channels.

    The fabric is pre-filled with cross-traffic over a time horizon; each
    probe is placed at the service's running clock. Mapper worms do not
    reserve channels against each other (the mapper is sequential), only
    against the traffic.
    """

    def __init__(
        self,
        net: Network,
        mapper: str,
        *,
        rate_msgs_per_ms: float,
        message_bytes: int = 4096,
        collision: CollisionModel | None = None,
        timing: TimingModel = MYRINET_TIMING,
        traffic_seed: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(
            net,
            mapper,
            collision=collision or CircuitModel(),
            timing=timing,
            **kwargs,
        )
        self.occupancy = ChannelOccupancy(timing)
        self.traffic = CrossTraffic(
            net,
            self.occupancy,
            timing,
            rate_msgs_per_ms=rate_msgs_per_ms,
            message_bytes=message_bytes,
            seed=traffic_seed,
            exclude_hosts=frozenset({mapper}),
        )
        self.probes_lost_to_traffic = 0

    def _traffic_blocks(self, info: ProbeInfo) -> bool:
        now = self._stats.elapsed_us
        # Lazily generate traffic slightly past the current clock so the
        # probe contends with everything in flight around it.
        self.traffic.fill_until(now + 10_000.0)
        placement = self.occupancy.try_place(info, now, record_blocked=False)
        if not placement.ok:
            self.probes_lost_to_traffic += 1
            return True
        return False

    def probe_host(self, turns: Turns) -> str | None:
        turns = validate_turns(turns)
        info = self._probe_info(turns)
        hit = False
        responder = None
        if (
            info.ok
            and info.blocked is None
            and not self.faults.kills_traversals(info.traversals)
            and not self._traffic_blocks(info)
        ):
            target = info.delivered_to
            assert target is not None
            if self._responds(target):
                hit = True
                responder = target
        cost = self._jittered(
            self.timing.probe_response_us(info.hops, info.hops)
            if hit
            else self.timing.probe_timeout_us()
        )
        self._stats.record(ProbeRecord(ProbeKind.HOST, turns, hit, cost, responder))
        return responder

    def probe_switch(self, turns: Turns) -> bool:
        turns = validate_turns(turns)
        loop = switch_probe_turns(turns)
        info = self._probe_info(loop)
        hit = (
            info.ok
            and info.blocked is None
            and not self.faults.kills_traversals(info.traversals)
            and not self._traffic_blocks(info)
        )
        cost = self._jittered(
            self.timing.probe_response_us(info.hops, 0)
            if hit
            else self.timing.probe_timeout_us()
        )
        self._stats.record(
            ProbeRecord(ProbeKind.SWITCH, turns, hit, cost, "switch" if hit else None)
        )
        return hit


class RetryingProbeService:
    """Bounded retry on top of any probe service (all attempts charged)."""

    def __init__(self, inner, *, retries: int = 2) -> None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self._inner = inner
        self._retries = retries

    @property
    def mapper_host(self) -> str:
        return self._inner.mapper_host

    @property
    def stats(self) -> ProbeStats:
        return self._inner.stats

    def probe_host(self, turns):
        for _ in range(self._retries + 1):
            got = self._inner.probe_host(turns)
            if got is not None:
                return got
        return None

    def probe_switch(self, turns):
        for _ in range(self._retries + 1):
            if self._inner.probe_switch(turns):
                return True
        return False


@dataclass(slots=True)
class TrafficPoint:
    """One sweep point of the cross-traffic study."""

    rate_msgs_per_ms: float
    retries: int
    correct: bool
    hosts_found: int
    hosts_total: int
    switches_found: int
    switches_total: int
    wires_found: int
    wires_total: int
    probes: int
    probes_lost: int
    elapsed_ms: float
    error: str = ""

    @property
    def completeness(self) -> float:
        denom = self.hosts_total + self.switches_total + self.wires_total
        found = self.hosts_found + self.switches_found + self.wires_found
        return found / denom if denom else 1.0


def crosstraffic_study(
    net: Network,
    mapper_host: str,
    *,
    search_depth: int,
    rates: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 5.0, 10.0),
    retries: tuple[int, ...] = (0, 2),
    seed: int = 0,
) -> list[TrafficPoint]:
    """Sweep traffic intensity x retry budget; measure map quality/cost."""
    core = core_network(net)
    points: list[TrafficPoint] = []
    for rate in rates:
        for n_retries in retries:
            svc: object = CrossTrafficProbeService(
                net,
                mapper_host,
                rate_msgs_per_ms=rate,
                traffic_seed=seed,
            )
            base = svc
            if n_retries:
                svc = RetryingProbeService(svc, retries=n_retries)
            error = ""
            try:
                result = BerkeleyMapper(
                    svc, search_depth=search_depth, host_first=False
                ).run()
                produced = result.network
                correct = bool(match_networks(produced, core))
            except MappingError as exc:  # pragma: no cover - defensive
                produced = None
                correct = False
                error = str(exc)
            points.append(
                TrafficPoint(
                    rate_msgs_per_ms=rate,
                    retries=n_retries,
                    correct=correct,
                    hosts_found=produced.n_hosts if produced else 0,
                    hosts_total=core.n_hosts,
                    switches_found=produced.n_switches if produced else 0,
                    switches_total=core.n_switches,
                    wires_found=produced.n_wires if produced else 0,
                    wires_total=core.n_wires,
                    probes=base.stats.total_probes,
                    probes_lost=base.probes_lost_to_traffic,
                    elapsed_ms=base.stats.elapsed_ms,
                    error=error,
                )
            )
    return points
