"""Seeded random system-area networks for property-based testing.

The correctness theorem quantifies over *arbitrary* connected networks, so
the property tests need a generator that covers the space: random connected
switch graphs (with parallel cables and optional switch-bridges producing a
non-empty ``F``), hosts attached at random switches, all within radix
constraints.
"""

from __future__ import annotations

import random

from repro.topology.builder import NetworkBuilder
from repro.topology.model import Network, TopologyError

__all__ = ["random_san"]


def random_san(
    *,
    n_switches: int,
    n_hosts: int,
    extra_links: int = 0,
    parallel_link_prob: float = 0.0,
    pendant_switches: int = 0,
    radix: int = 8,
    seed: int = 0,
    prefix: str = "r",
) -> Network:
    """Generate a random connected SAN.

    Construction: a random switch spanning tree (guarantees connectivity),
    ``extra_links`` additional random switch-switch cables (each a chance to
    create multipaths and hence replicates for the mapper to resolve),
    optional parallel cables, then ``n_hosts`` hosts attached to random
    switches. ``pendant_switches`` adds host-free switch chains hanging off
    a single cable — these are behind switch-bridges and populate ``F``.

    Deterministic for a given seed. Raises :class:`TopologyError` when the
    requested density cannot fit the radix.
    """
    if n_switches < 1:
        raise TopologyError("need at least one switch")
    if n_hosts < 2:
        raise TopologyError("the model requires at least two hosts")
    rng = random.Random(seed)
    b = NetworkBuilder(default_radix=radix)
    switches = [f"{prefix}-s{i}" for i in range(n_switches)]
    for s in switches:
        b.switch(s)

    net = b.peek()

    # Random spanning tree: connect each new switch to a uniformly random
    # already-connected one (random recursive tree).
    for i in range(1, n_switches):
        for _ in range(64):
            target = switches[rng.randrange(i)]
            if net.free_ports(target) and net.free_ports(switches[i]):
                b.link(switches[i], target)
                break
        else:
            raise TopologyError("could not place spanning-tree link within radix")

    def _random_pair() -> tuple[str, str] | None:
        candidates = [s for s in switches if net.free_ports(s)]
        if len(candidates) < 2:
            return None
        a, c = rng.sample(candidates, 2)
        return a, c

    placed = 0
    attempts = 0
    while placed < extra_links and attempts < extra_links * 20 + 20:
        attempts += 1
        pair = _random_pair()
        if pair is None:
            break
        a, c = pair
        b.link(a, c)
        placed += 1
        if parallel_link_prob and rng.random() < parallel_link_prob:
            if net.free_ports(a) and net.free_ports(c):
                b.link(a, c)

    # Pendant (host-free) switch chains: one cable in, nothing else -> the
    # cable is a switch-bridge and the chain lands in F.
    for i in range(pendant_switches):
        name = f"{prefix}-f{i}"
        b.switch(name)
        anchors = [s for s in switches if net.free_ports(s)]
        if not anchors:
            raise TopologyError("no free port for pendant switch")
        b.link(name, rng.choice(anchors))

    placed_hosts = 0
    attempts = 0
    while placed_hosts < n_hosts:
        attempts += 1
        if attempts > n_hosts * 50:
            raise TopologyError("could not attach all hosts within radix")
        target = switches[rng.randrange(n_switches)]
        if net.free_ports(target):
            host = f"{prefix}-h{placed_hosts}"
            b.host(host)
            b.attach(host, target)
            placed_hosts += 1

    return b.build(require_connected=True)
