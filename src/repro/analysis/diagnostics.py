"""Diagnostic records produced by :mod:`repro.analysis` rules.

A diagnostic pins a rule violation to a file, line, and column, carries the
human-readable message, and (optionally) a *fix-it hint* — one sentence
telling the author the sanctioned way to write the same thing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Diagnostic"]


@dataclass(frozen=True, slots=True, order=True)
class Diagnostic:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    hint: str | None = field(default=None, compare=False)

    def render(self, *, show_hint: bool = True) -> str:
        """``path:line:col: SANxxx message`` plus an indented hint line."""
        head = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if show_hint and self.hint:
            return f"{head}\n    hint: {self.hint}"
        return head

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "Diagnostic":
        """Inverse of :meth:`to_json`; used by the incremental cache."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            rule_id=str(data["rule"]),
            message=str(data["message"]),
            hint=None if data.get("hint") is None else str(data["hint"]),
        )
