"""Scenario-DSL tests: validation, normalization, serialization."""

import pytest

from repro.chaos.scenario import (
    ChaosEvent,
    Scenario,
    ScenarioError,
    cut,
    drop,
    heal,
    kill_switch,
    plug,
    scenario_from_dict,
    scenario_to_dict,
)


class TestEventValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ScenarioError, match="unknown action"):
            ChaosEvent(0, "explode", ("s0",))

    def test_arity_enforced(self):
        with pytest.raises(ScenarioError, match="takes 2 args"):
            ChaosEvent(0, "cut", ("s0",))

    def test_negative_cycle_rejected(self):
        with pytest.raises(ScenarioError, match="cycle"):
            ChaosEvent(-1, "drop", (0.5,))

    def test_negative_after_probes_rejected(self):
        with pytest.raises(ScenarioError, match="after_probes"):
            ChaosEvent(0, "drop", (0.5,), after_probes=-2)

    def test_probability_range_enforced(self):
        with pytest.raises(ScenarioError, match=r"\[0, 1\]"):
            drop(0, 1.5)
        with pytest.raises(ScenarioError, match=r"\[0, 1\]"):
            ChaosEvent(0, "corrupt", ("not-a-number",))

    def test_sugar_builds_the_right_events(self):
        ev = plug(2, "s0", 3, "s3", 3, after_probes=7)
        assert ev.action == "plug"
        assert ev.args == ("s0", 3, "s3", 3)
        assert ev.cycle == 2 and ev.after_probes == 7


class TestScenarioNormalization:
    def test_events_sorted_by_time(self):
        s = Scenario(
            "x",
            (heal(3, "s0", 1), cut(1, "s0", 1), drop(1, 0.2, after_probes=9)),
            seed=1,
        )
        assert [(e.cycle, e.after_probes) for e in s.events] == [
            (1, 0), (1, 9), (3, 0),
        ]

    def test_cycles_derived_from_last_event(self):
        assert Scenario("x", (cut(4, "s0", 1),), seed=1).cycles == 5
        assert Scenario("empty", (), seed=1).cycles == 1

    def test_declared_cycles_must_cover_events(self):
        with pytest.raises(ScenarioError, match="declares 2 cycles"):
            Scenario("x", (cut(4, "s0", 1),), cycles=2, seed=1)

    def test_events_for_partitions_by_cycle(self):
        s = Scenario("x", (cut(0, "s0", 1), kill_switch(2, "s1")), seed=1)
        assert [e.action for e in s.events_for(0)] == ["cut"]
        assert s.events_for(1) == ()
        assert [e.action for e in s.events_for(2)] == ["kill_switch"]

    def test_with_events_rederives_cycles(self):
        s = Scenario("x", (cut(5, "s0", 1),), seed=1)
        assert s.with_events((cut(0, "s0", 1),)).cycles == 1

    def test_name_required(self):
        with pytest.raises(ScenarioError, match="name"):
            Scenario("", (), seed=1)


class TestSerialization:
    def test_roundtrip(self):
        s = Scenario(
            "rt", (cut(1, "s2", 1), drop(2, 0.3, after_probes=4)), seed=99
        )
        assert scenario_from_dict(scenario_to_dict(s)) == s

    def test_seed_is_mandatory(self):
        with pytest.raises(ScenarioError, match="seed"):
            scenario_from_dict({"name": "x", "events": []})

    def test_event_dict_missing_key(self):
        with pytest.raises(ScenarioError, match="missing key"):
            ChaosEvent.from_dict({"action": "cut"})

    def test_after_probes_omitted_when_zero(self):
        assert "after_probes" not in cut(0, "s0", 1).to_dict()
        assert cut(0, "s0", 1, after_probes=3).to_dict()["after_probes"] == 3
