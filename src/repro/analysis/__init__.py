"""``sanlint`` — domain-aware static analysis for the reproduction.

The Berkeley algorithm's correctness argument (Section 3) assumes things
the code can only honour by discipline: deterministic lockstep simulation,
seeded RNGs everywhere, relative non-modular port arithmetic staying in
``[0, radix)``, and all network observation flowing through
:class:`~repro.simulator.probes.ProbeService`. This package makes those
substrate guarantees machine-checked:

- :mod:`repro.analysis.rules` — the SAN001-SAN014 rule set (SAN012-014
  are the whole-program *sanflow* rules: epoch soundness, RNG seed
  taint, ProbeLayer purity — see ``docs/SANFLOW.md``);
- :mod:`repro.analysis.engine` — parsing, ``# sanlint: disable=...``
  suppression, reporting, and the sanflow orchestration;
- :mod:`repro.analysis.flow` / :mod:`repro.analysis.project` — per-function
  CFGs and the repo-wide symbol table / call graph the sanflow rules query;
- :mod:`repro.analysis.cache` — content-hash incremental result cache;
- :mod:`repro.analysis.baseline` / :mod:`repro.analysis.sarif` — adoption
  baseline filtering and SARIF 2.1.0 output for code scanning;
- :mod:`repro.analysis.cli` — the ``san-lint`` console script;
- ``tests/analysis/test_codebase_clean.py`` — lints ``src/repro`` on every
  pytest run, so a violating change fails tier-1.
"""

from repro.analysis.baseline import Baseline, load_baseline, write_baseline
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import lint_paths, lint_source, render_report
from repro.analysis.registry import all_rule_ids, get_rule, iter_rules
from repro.analysis.sarif import render_sarif, to_sarif

__all__ = [
    "Baseline",
    "Diagnostic",
    "all_rule_ids",
    "get_rule",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render_report",
    "render_sarif",
    "to_sarif",
    "write_baseline",
]
