"""Deadlock-free route computation and distribution (Section 5.5).

From a network map the system derives mutually deadlock-free routes with
UP*/DOWN* routing [Autonet]: a BFS edge ordering from a root switch chosen
as far from all hosts as possible, such that every valid route follows zero
or more up edges then zero or more down edges — a route never turns from a
down edge onto an up edge. Locally dominant switches (unusable under the
raw BFS labeling) are relabeled per the paper's heuristic.

- :mod:`~repro.routing.updown` — root selection, BFS labeling, edge
  orientation, dominant-switch relabeling;
- :mod:`~repro.routing.paths` — all-pairs shortest compliant paths
  (Floyd–Warshall on the up/down phase graph, as in the paper, plus an
  independent BFS method for cross-checking);
- :mod:`~repro.routing.compile_routes` — absolute paths to relative-turn
  source routes, verified by simulation;
- :mod:`~repro.routing.deadlock` — channel-dependency-graph acyclicity
  (Dally–Seitz) over complete route sets;
- :mod:`~repro.routing.distribute` — route-table distribution to all
  interfaces.
"""

from repro.routing.updown import UpDownOrientation, orient_updown, pick_root
from repro.routing.paths import RoutingPaths, all_pairs_updown_paths
from repro.routing.compile_routes import RouteTable, compile_route_tables
from repro.routing.deadlock import channel_dependency_graph, routes_deadlock_free
from repro.routing.distribute import DistributionReport, distribute_routes
from repro.routing.incremental import diff_route_tables, distribute_incremental
from repro.routing.lash import LashRouting, lash_route_tables
from repro.routing.quality import RouteQuality, analyze_routes

__all__ = [
    "DistributionReport",
    "LashRouting",
    "RouteQuality",
    "analyze_routes",
    "diff_route_tables",
    "distribute_incremental",
    "lash_route_tables",
    "RouteTable",
    "RoutingPaths",
    "UpDownOrientation",
    "all_pairs_updown_paths",
    "channel_dependency_graph",
    "compile_route_tables",
    "distribute_routes",
    "orient_updown",
    "pick_root",
    "routes_deadlock_free",
]
