"""Structural map-diff tests."""

from repro.topology.diff import diff_networks
from repro.topology.builder import NetworkBuilder
from repro.topology.generators import build_subcluster


def _sample():
    b = NetworkBuilder()
    b.switches("s0", "s1")
    b.hosts("h0", "h1", "h2")
    b.attach("h0", "s0", port=0)
    b.attach("h1", "s0", port=1)
    b.attach("h2", "s1", port=2)
    b.link("s0", "s1", port_a=5, port_b=0)
    return b.build()


class TestIdentical:
    def test_same_object(self):
        net = _sample()
        assert diff_networks(net, net).identical

    def test_copy_is_identical(self):
        net = _sample()
        d = diff_networks(net, net.copy())
        assert d.identical and not d.routes_stale
        assert d.summary() == "no change"

    def test_port_offsets_tolerated(self):
        """A re-run mapper produces shifted ports; the diff must see
        through that (isomorphism up to offsets)."""
        a = _sample()
        b = NetworkBuilder()
        b.switches("x0", "x1")
        b.hosts("h0", "h1", "h2")
        b.attach("h0", "x0", port=2)  # all of s0's ports shifted by +2
        b.attach("h1", "x0", port=3)
        b.attach("h2", "x1", port=2)
        b.link("x0", "x1", port_a=7, port_b=0)
        assert diff_networks(a, b.build()).identical


class TestChanges:
    def test_host_added(self):
        old = _sample()
        new = _sample()
        new.add_host("h3")
        new.connect("h3", 0, "s1", 3)
        d = diff_networks(old, new)
        assert d.hosts_added == ["h3"]
        assert d.routes_stale
        assert "+1 hosts" in d.summary()

    def test_host_removed(self):
        old = _sample()
        new = _sample()
        new.remove_node("h2")
        d = diff_networks(old, new)
        assert d.hosts_removed == ["h2"]
        assert d.wire_count_delta == -1

    def test_host_moved(self):
        old = _sample()
        new = NetworkBuilder()
        new.switches("s0", "s1")
        new.hosts("h0", "h1", "h2")
        new.attach("h0", "s0", port=0)
        new.attach("h1", "s1", port=1)  # h1 moved from s0 to s1
        new.attach("h2", "s1", port=2)
        new.link("s0", "s1", port_a=5, port_b=0)
        d = diff_networks(old, new.build())
        assert "h1" in d.hosts_moved

    def test_switch_added(self):
        old = _sample()
        new = _sample()
        new.add_switch("s2")
        new.connect("s2", 0, "s1", 4)
        d = diff_networks(old, new)
        assert d.switch_count_delta == 1
        assert d.wire_count_delta == 1

    def test_rewiring_same_counts(self):
        old = _sample()
        new = _sample()
        wire = new.wire_at("s0", 5)
        new.disconnect(wire)
        new.connect("s0", 6, "s1", 7)  # same counts, different geometry...
        d = diff_networks(old, new)
        # Moving a switch-switch cable to other ports is invisible up to
        # offsets only if relative spacing is preserved; here s0's wires
        # are at (0,1,6) vs (0,1,5): spacing changed.
        assert not d.identical

    def test_subcluster_vs_other_subcluster(self):
        d = diff_networks(build_subcluster("C"), build_subcluster("A"))
        assert not d.identical
        assert d.hosts_added and d.hosts_removed
