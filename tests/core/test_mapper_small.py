"""Berkeley mapper on small hand-built topologies.

Each case targets one mechanism: basic discovery, replicate merging via
host anchors, index re-normalization, parallel wires, loopback cables,
F-pruning, depth limits, the exploration bound.
"""

import pytest

from repro.core.mapper import BerkeleyMapper, MappingError
from repro.simulator.collision import CutThroughModel, PacketModel
from repro.simulator.quiescent import QuiescentProbeService
from repro.topology.analysis import core_network, recommended_search_depth
from repro.topology.builder import NetworkBuilder
from repro.topology.isomorphism import match_networks


def _map(net, mapper="h0", depth=None, **kwargs):
    depth = depth or recommended_search_depth(net, mapper)
    svc = QuiescentProbeService(net, mapper, **{
        k: kwargs.pop(k) for k in ("collision", "responders") if k in kwargs
    })
    return BerkeleyMapper(svc, search_depth=depth, host_first=False, **kwargs).run()


class TestBasics:
    def test_single_switch(self, tiny_net):
        result = _map(tiny_net)
        assert match_networks(result.network, tiny_net)
        assert result.network.n_switches == 1
        assert set(result.network.hosts) == {"h0", "h1", "h2"}

    def test_two_switches_with_parallel_wires(self, two_switch_net):
        result = _map(two_switch_net)
        report = match_networks(result.network, two_switch_net)
        assert report, report.reason
        assert result.network.n_wires == 6

    def test_ring_produces_and_merges_replicates(self, ring_net):
        result = _map(ring_net)
        assert match_networks(result.network, ring_net)
        # A 4-ring probed in both directions necessarily creates
        # replicates that only merging can resolve.
        assert result.merges > 0
        assert result.network.n_switches == 4

    def test_map_from_each_host_is_equivalent(self, ring_net):
        for host in ring_net.hosts:
            result = _map(ring_net, mapper=host)
            assert match_networks(result.network, ring_net), host

    def test_chain_topology(self):
        b = NetworkBuilder()
        b.switches("s0", "s1", "s2")
        b.hosts("h0", "h1")
        b.attach("h0", "s0", port=2)
        b.attach("h1", "s2", port=5)
        b.link("s0", "s1", port_a=7, port_b=0)
        b.link("s1", "s2", port_a=3, port_b=1)
        net = b.build()
        result = _map(net)
        assert match_networks(result.network, net)


class TestPortGeometry:
    def test_port_offsets_recovered_up_to_shift(self, tiny_net):
        result = _map(tiny_net)
        report = match_networks(result.network, tiny_net)
        # Hosts sit at actual ports 0, 3, 7; the map's canonical offset
        # puts the minimum used index at 0, so the offset is consistent.
        offsets = set(report.port_offsets.values())
        assert len(offsets) == 1

    def test_loopback_cable(self):
        b = NetworkBuilder()
        b.switch("s0").hosts("h0", "h1")
        b.attach("h0", "s0", port=0)
        b.attach("h1", "s0", port=1)
        b.link("s0", "s0", port_a=3, port_b=6)
        net = b.build()
        result = _map(net)
        report = match_networks(result.network, net)
        assert report, report.reason
        # The loopback survives as a same-switch wire in the map.
        mapped_switch = result.network.switches[0]
        loops = [
            w
            for w in result.network.wires_of(mapped_switch)
            if w.a.node == w.b.node
        ]
        assert len(loops) == 1


class TestPruning:
    def test_f_region_pruned(self, bridge_net):
        result = _map(bridge_net)
        core = core_network(bridge_net)
        report = match_networks(result.network, core)
        assert report, report.reason
        assert result.network.n_switches == 2  # f0, f1 pruned

    def test_cut_through_with_empty_f_maps_everything(self, ring_net):
        result = _map(ring_net, collision=CutThroughModel(slack_hops=1))
        assert match_networks(result.network, ring_net)

    def test_packet_routing_also_correct(self, ring_net):
        result = _map(ring_net, collision=PacketModel())
        assert match_networks(result.network, ring_net)


class TestLimits:
    def test_depth_too_small_gives_partial_map(self, ring_net):
        result = _map(ring_net, depth=2)
        # Sound but incomplete: fewer switches than actual, no junk.
        assert result.network.n_switches <= 4
        assert not match_networks(result.network, ring_net)

    def test_exploration_bound_respected(self, ring_net):
        result = _map(ring_net, max_explorations=3)
        assert result.explorations <= 3

    def test_growth_trace_shape(self, ring_net):
        svc = QuiescentProbeService(ring_net, "h0")
        depth = recommended_search_depth(ring_net, "h0")
        result = BerkeleyMapper(
            svc, search_depth=depth, host_first=False, record_growth=True
        ).run()
        growth = result.growth
        assert growth[-1].n_frontier == 0
        assert max(s.n_nodes for s in growth) == result.peak_model_nodes
        # The final prune can only shrink the model.
        assert growth[-1].n_nodes <= max(s.n_nodes for s in growth)
        assert growth[-1].n_nodes == (
            result.network.n_hosts + result.network.n_switches
        )

    def test_invalid_depth_rejected(self, tiny_net):
        svc = QuiescentProbeService(tiny_net, "h0")
        with pytest.raises(ValueError):
            BerkeleyMapper(svc, search_depth=0)


class TestResponders:
    def test_silent_hosts_missing_from_map(self, tiny_net):
        result = _map(tiny_net, responders=frozenset({"h1"}))
        assert set(result.network.hosts) == {"h0", "h1"}

    def test_mapper_host_always_present(self, tiny_net):
        result = _map(tiny_net, responders=frozenset())
        assert "h0" in result.network.hosts


class TestStats:
    def test_probe_accounting_consistency(self, two_switch_net):
        result = _map(two_switch_net)
        s = result.stats
        assert s.total_probes == s.host_probes + s.switch_probes
        assert s.total_hits <= s.total_probes
        assert s.elapsed_us > 0

    def test_switch_names_deterministic(self, two_switch_net):
        a = _map(two_switch_net)
        b = _map(two_switch_net)
        assert sorted(a.network.switches) == sorted(b.network.switches)
