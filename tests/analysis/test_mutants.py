"""Mutant-based acceptance tests for the sanflow rules.

Each test copies a *real* simulator module, seeds exactly the defect its
rule exists to catch — a deleted epoch bump, an unseeded RNG, a
state-mutating layer hook — and asserts ``san-lint`` exits non-zero with
the expected rule id, while an unmutated copy lints green. This is the
ISSUE-6 acceptance criterion stated as executable truth: the rules catch
the regressions they were built for, on the code they were built for,
not just on synthetic snippets.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis.cli import main
from repro.analysis.engine import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def install_copy(tmp_path: Path, relpath: str, source: str) -> Path:
    """Write a module copy under a fake ``repro`` package tree."""
    dest = tmp_path / "repro" / relpath
    dest.parent.mkdir(parents=True, exist_ok=True)
    cur = dest.parent
    while cur != tmp_path:
        (cur / "__init__.py").touch()
        cur = cur.parent
    dest.write_text(source)
    return dest


def lint_ids(path: Path) -> list[str]:
    return [d.rule_id for d in lint_paths([path])]


def run_cli(path: Path, capsys) -> tuple[int, str]:
    code = main(["--no-cache", str(path)])
    return code, capsys.readouterr().out


# ---------------------------------------------------------------------------
# SAN012: delete one epoch bump from a real Network mutator
# ---------------------------------------------------------------------------


def test_clean_network_copy_lints_green(tmp_path):
    source = (SRC / "topology" / "model.py").read_text()
    copy = install_copy(tmp_path, "topology/model.py", source)
    assert lint_ids(copy) == []


def test_deleted_epoch_bump_fires_san012(tmp_path, capsys):
    source = (SRC / "topology" / "model.py").read_text()
    assert "self._bump_epoch()" in source
    # Remove the bump from exactly one mutator: disconnect().
    head, mid = source.split("def disconnect", 1)
    assert mid.count("self._bump_epoch(delta)") >= 1
    mutated = (
        head + "def disconnect" + mid.replace("self._bump_epoch(delta)", "pass", 1)
    )
    copy = install_copy(tmp_path, "topology/model.py", mutated)
    code, out = run_cli(copy, capsys)
    assert code == 1
    assert "SAN012" in out
    assert "disconnect" in out and "topology_epoch" in out
    # The rest of the mutators still prove sound: no other method named.
    assert "connect`" not in out.replace("disconnect", "")


def test_deleted_fault_epoch_bump_fires_san012(tmp_path, capsys):
    source = (SRC / "simulator" / "faults.py").read_text()
    head, mid = source.split("def set_drop_prob", 1)
    mutated = head + "def set_drop_prob" + mid.replace(
        "self._bump_epoch(UNBOUNDED_DELTA)", "pass", 1
    )
    copy = install_copy(tmp_path, "simulator/faults.py", mutated)
    code, out = run_cli(copy, capsys)
    assert code == 1
    assert "SAN012" in out and "set_drop_prob" in out and "fault_epoch" in out


# ---------------------------------------------------------------------------
# SAN013: swap the seeded RNG in FaultModel for an unseeded one
# ---------------------------------------------------------------------------


def test_clean_fault_model_copy_lints_green(tmp_path):
    source = (SRC / "simulator" / "faults.py").read_text()
    copy = install_copy(tmp_path, "simulator/faults.py", source)
    assert lint_ids(copy) == []


def test_unseeded_rng_fires_san013(tmp_path, capsys):
    source = (SRC / "simulator" / "faults.py").read_text()
    assert "random.Random(self.seed)" in source
    mutated = source.replace("random.Random(self.seed)", "random.Random()")
    copy = install_copy(tmp_path, "simulator/faults.py", mutated)
    code, out = run_cli(copy, capsys)
    assert code == 1
    assert "SAN013" in out and "OS entropy" in out


def test_wall_clock_seed_fires_san013(tmp_path, capsys):
    source = (SRC / "simulator" / "faults.py").read_text()
    mutated = source.replace(
        "random.Random(self.seed)", "random.Random(time.time())"
    ).replace("import random\n", "import random\nimport time\n")
    copy = install_copy(tmp_path, "simulator/faults.py", mutated)
    code, out = run_cli(copy, capsys)
    assert code == 1
    # SAN001 (wall clock in simulator code) and SAN013 both catch it; the
    # taint finding must name the unreplayable source.
    assert "SAN013" in out and "time.time" in out


# ---------------------------------------------------------------------------
# SAN014: add a direct state mutation inside a real ProbeLayer hook
# ---------------------------------------------------------------------------


def test_clean_stack_copy_lints_green(tmp_path):
    source = (SRC / "simulator" / "stack.py").read_text()
    copy = install_copy(tmp_path, "simulator/stack.py", source)
    assert lint_ids(copy) == []


def test_state_mutating_hook_fires_san014(tmp_path, capsys):
    source = (SRC / "simulator" / "stack.py").read_text()
    needle = "    def fire(self, payload: object) -> None:"
    assert needle in source
    mutated = source.replace(
        needle,
        "    def sabotage(self, ctx, faults):\n"
        "        faults.drop_prob = 0.75\n"
        "\n" + needle,
        1,
    )
    copy = install_copy(tmp_path, "simulator/stack.py", mutated)
    code, out = run_cli(copy, capsys)
    assert code == 1
    assert "SAN014" in out and "sabotage" in out and "drop_prob" in out


def test_private_mutator_call_in_hook_fires_san014(tmp_path, capsys):
    source = (SRC / "simulator" / "stack.py").read_text()
    needle = "    def fire(self, payload: object) -> None:"
    mutated = source.replace(
        needle,
        "    def sneak(self, ctx, net):\n"
        "        net._rewire_backdoor(ctx)\n"
        "\n" + needle,
        1,
    )
    copy = install_copy(tmp_path, "simulator/stack.py", mutated)
    code, out = run_cli(copy, capsys)
    assert code == 1
    assert "SAN014" in out and "_rewire_backdoor" in out


def test_public_mutator_call_in_hook_stays_green(tmp_path):
    # Chaos layers inject faults through the epoch-bumping public API —
    # that is the sanctioned path and must not be flagged.
    source = (SRC / "simulator" / "stack.py").read_text()
    needle = "    def fire(self, payload: object) -> None:"
    mutated = source.replace(
        needle,
        "    def inject(self, ctx, faults):\n"
        "        faults.set_drop_prob(0.75)\n"
        "\n" + needle,
        1,
    )
    copy = install_copy(tmp_path, "simulator/stack.py", mutated)
    assert lint_ids(copy) == []


# ---------------------------------------------------------------------------
# warm-cache performance (the ISSUE-6 ≥5x acceptance criterion)
# ---------------------------------------------------------------------------


def test_warm_cache_is_at_least_5x_faster_than_cold(tmp_path):
    cache = tmp_path / "cache.json"

    def run() -> float:
        t0 = time.perf_counter()
        lint_paths([SRC], cache_path=cache)
        return time.perf_counter() - t0

    cold = run()
    warm = min(run() for _ in range(3))
    assert warm < cold / 5, (
        f"warm whole-repo analysis {warm * 1e3:.1f}ms vs cold "
        f"{cold * 1e3:.1f}ms: expected >=5x speedup"
    )


def test_whole_repo_lints_green_through_the_cache(tmp_path):
    cache = tmp_path / "cache.json"
    assert lint_paths([SRC], cache_path=cache) == []
    assert lint_paths([SRC], cache_path=cache) == []
