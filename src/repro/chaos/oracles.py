"""The oracle suite: what "the system survived the scenario" means.

Each oracle checks one clause of the system's contract against the final
state of a chaos cell (the ground truth *as mutated by the schedule*, the
daemon's last map, and its compiled route tables):

- ``quotient_map``   — the paper's theorem, transported to the faulted
  network: the final map is isomorphic (up to per-switch port offsets) to
  the core ``N − F`` of the *effective* network — ground truth minus dead
  cables, restricted to the mapper's connected component;
- ``routes_deadlock_free`` — the compiled UP*/DOWN* tables pass the
  Dally–Seitz channel-dependency check;
- ``routes_deliver`` — every compiled route, evaluated on the effective
  network, reaches the host it claims to;
- ``remap_converges`` — remapping reaches a no-change cycle within the
  settle budget and the whole cell stays inside its probe budget;
- ``no_contradiction`` — the final cycle completed without a
  :class:`~repro.core.mapper.MappingError` (transient contradictions during
  fault ramps are reported in the detail, not failed on).

Determinism (same seed ⇒ byte-identical trace) is checked by the runner
itself — it needs two executions — and reported under the same
:class:`OracleVerdict` shape as ``deterministic``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol

import networkx as nx

from repro.routing.compile_routes import RouteTable
from repro.routing.deadlock import routes_deadlock_free
from repro.simulator.faults import FaultModel
from repro.simulator.path_eval import PathStatus, evaluate_route
from repro.topology.analysis import core_network
from repro.topology.isomorphism import match_networks
from repro.topology.model import Network

__all__ = [
    "CellContext",
    "ConvergenceOracle",
    "CycleOutcome",
    "DEFAULT_ORACLES",
    "DeadlockFreeOracle",
    "NoContradictionOracle",
    "Oracle",
    "OracleVerdict",
    "QuotientMapOracle",
    "RouteDeliveryOracle",
    "effective_network",
    "route_tables_equal",
]


@dataclass(frozen=True, slots=True)
class OracleVerdict:
    """One oracle's ruling on one cell."""

    oracle: str
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {"oracle": self.oracle, "ok": self.ok, "detail": self.detail}


@dataclass(frozen=True, slots=True)
class CycleOutcome:
    """What one map/verify/remap cycle produced (JSON-able)."""

    index: int
    scheduled: bool
    probes: int
    hosts: int
    switches: int
    wires: int
    changed: bool
    routes_recomputed: bool
    deadlock_free: bool | None
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "scheduled": self.scheduled,
            "probes": self.probes,
            "hosts": self.hosts,
            "switches": self.switches,
            "wires": self.wires,
            "changed": self.changed,
            "routes_recomputed": self.routes_recomputed,
            "deadlock_free": self.deadlock_free,
            "error": self.error,
        }


@dataclass
class CellContext:
    """Everything an oracle may look at after a cell finishes."""

    truth: Network
    faults: FaultModel
    mapper_host: str
    final_map: Network | None
    final_tables: dict[str, RouteTable] | None
    cycles: list[CycleOutcome] = field(default_factory=list)
    probe_budget: int = 1_000_000

    @property
    def total_probes(self) -> int:
        return sum(c.probes for c in self.cycles)


class Oracle(Protocol):
    """One checkable clause of the system contract."""

    name: str

    def check(self, ctx: CellContext) -> OracleVerdict:
        ...  # pragma: no cover - protocol


# ---------------------------------------------------------------------------
# the effective network: what the mapper could possibly have observed
# ---------------------------------------------------------------------------
def effective_network(
    net: Network, faults: FaultModel, mapper_host: str
) -> Network:
    """Ground truth minus dead cables, restricted to the mapper's component.

    A silently dead cable (Section 5.6) is in-band indistinguishable from an
    absent cable, and anything the mapper cannot reach cannot appear in its
    map — so this is the network the theorem's ``N`` becomes under faults.
    """
    eff = net.copy()
    if faults.dead_wires:
        for wire in list(eff.wires):
            if frozenset((wire.a, wire.b)) in faults.dead_wires:
                eff.disconnect(wire)
    g = nx.Graph(eff.to_networkx())
    if mapper_host not in g:
        return eff.induced_subnetwork([mapper_host])
    return eff.induced_subnetwork(nx.node_connected_component(g, mapper_host))


def _viable(net: Network) -> bool:
    """Does the network still satisfy the paper's standing model minimums?"""
    return net.n_switches >= 1 and net.n_hosts >= 2


# ---------------------------------------------------------------------------
# oracles
# ---------------------------------------------------------------------------
class QuotientMapOracle:
    """Final map ≅ core(N_effective − F), up to per-switch port offsets."""

    name = "quotient_map"

    def check(self, ctx: CellContext) -> OracleVerdict:
        eff = effective_network(ctx.truth, ctx.faults, ctx.mapper_host)
        if not _viable(eff):
            # The scenario degraded the network below the system model's
            # minimums; the theorem has nothing to say, so the oracle only
            # requires that the mapper did not invent structure.
            mapped_hosts = ctx.final_map.n_hosts if ctx.final_map else 0
            ok = mapped_hosts <= eff.n_hosts
            return OracleVerdict(
                self.name,
                ok,
                f"effective network degenerate ({eff.n_hosts} hosts, "
                f"{eff.n_switches} switches); map has {mapped_hosts} hosts",
            )
        if ctx.final_map is None:
            return OracleVerdict(self.name, False, "no map was produced")
        report = match_networks(ctx.final_map, core_network(eff))
        if report:
            return OracleVerdict(
                self.name,
                True,
                f"isomorphic to effective core ({eff.n_hosts} hosts, "
                f"{eff.n_switches} switches)",
            )
        return OracleVerdict(self.name, False, report.reason)


class DeadlockFreeOracle:
    """Compiled route tables pass the Dally–Seitz acyclicity check."""

    name = "routes_deadlock_free"

    def check(self, ctx: CellContext) -> OracleVerdict:
        if ctx.final_tables is None:
            return OracleVerdict(self.name, False, "no route tables compiled")
        if routes_deadlock_free(ctx.final_tables):
            n = sum(len(t) for t in ctx.final_tables.values())
            return OracleVerdict(self.name, True, f"{n} routes acyclic")
        return OracleVerdict(self.name, False, "channel dependency cycle found")


class RouteDeliveryOracle:
    """Every compiled route delivers on the effective network."""

    name = "routes_deliver"

    def check(self, ctx: CellContext) -> OracleVerdict:
        if ctx.final_tables is None:
            return OracleVerdict(self.name, False, "no route tables compiled")
        eff = effective_network(ctx.truth, ctx.faults, ctx.mapper_host)
        total = 0
        bad: list[str] = []
        for table in ctx.final_tables.values():
            for dst, route in table.routes.items():
                total += 1
                if table.host not in eff or dst not in eff:
                    bad.append(f"{table.host}->{dst} (unreachable endpoint)")
                    continue
                out = evaluate_route(eff, table.host, route.turns)
                if out.status is not PathStatus.DELIVERED or out.delivered_to != dst:
                    bad.append(f"{table.host}->{dst}")
        if bad:
            return OracleVerdict(
                self.name,
                False,
                f"{len(bad)}/{total} routes fail: {', '.join(sorted(bad)[:5])}",
            )
        return OracleVerdict(self.name, True, f"{total}/{total} routes deliver")


class ConvergenceOracle:
    """Remapping settles (a no-change cycle) inside the probe budget."""

    name = "remap_converges"

    def check(self, ctx: CellContext) -> OracleVerdict:
        if not ctx.cycles:
            return OracleVerdict(self.name, False, "no cycles ran")
        last = ctx.cycles[-1]
        if last.error is not None:
            return OracleVerdict(
                self.name, False, f"final cycle errored: {last.error}"
            )
        if last.changed:
            return OracleVerdict(
                self.name,
                False,
                f"map still changing after {len(ctx.cycles)} cycles",
            )
        if ctx.total_probes > ctx.probe_budget:
            return OracleVerdict(
                self.name,
                False,
                f"{ctx.total_probes} probes exceed budget {ctx.probe_budget}",
            )
        return OracleVerdict(
            self.name,
            True,
            f"converged in {len(ctx.cycles)} cycles, "
            f"{ctx.total_probes} probes",
        )


class NoContradictionOracle:
    """The final cycle mapped without a deduction contradiction."""

    name = "no_contradiction"

    def check(self, ctx: CellContext) -> OracleVerdict:
        if not ctx.cycles:
            return OracleVerdict(self.name, False, "no cycles ran")
        transient = sum(1 for c in ctx.cycles[:-1] if c.error is not None)
        last = ctx.cycles[-1]
        if last.error is not None:
            return OracleVerdict(self.name, False, last.error)
        detail = (
            f"{transient} transient contradiction(s) during fault ramp"
            if transient
            else "clean"
        )
        return OracleVerdict(self.name, True, detail)


#: The suite a campaign runs by default (determinism is runner-side).
DEFAULT_ORACLES: tuple[Oracle, ...] = (
    QuotientMapOracle(),
    DeadlockFreeOracle(),
    RouteDeliveryOracle(),
    ConvergenceOracle(),
    NoContradictionOracle(),
)


# ---------------------------------------------------------------------------
# differential helper (shared with the routing/incremental chaos tests)
# ---------------------------------------------------------------------------
def route_tables_equal(
    a: dict[str, RouteTable] | None,
    b: dict[str, RouteTable] | None,
    *,
    hosts: Iterable[str] | None = None,
) -> tuple[bool, str]:
    """Turn-string equality of two table generations (the differential oracle).

    Compares host -> destination -> turns; ``hosts`` restricts the check to
    a subset (e.g. the hosts a partial recompilation claims to have updated).
    Returns ``(equal, first difference)``.
    """
    a = a or {}
    b = b or {}
    keys = set(a) | set(b)
    if hosts is not None:
        keys &= set(hosts)
    for host in sorted(keys):
        ta, tb = a.get(host), b.get(host)
        if ta is None or tb is None:
            return False, f"host {host} present in only one generation"
        if set(ta.routes) != set(tb.routes):
            return False, f"host {host} routes to different destination sets"
        for dst in sorted(ta.routes):
            if ta.routes[dst].turns != tb.routes[dst].turns:
                return False, (
                    f"{host}->{dst}: {ta.routes[dst].turns} != "
                    f"{tb.routes[dst].turns}"
                )
    return True, ""
