"""Shared fixtures for the chaos-harness tests.

``buggy_mapper_factory`` is the acceptance-criteria fixture: a mapper with a
deliberately injected bug (it silently drops one switch-switch cable from
its map whenever any wire is dead at map time). The oracle suite must catch
it and the shrinker must reduce any failing schedule to a handful of events.
The bug lives here, guarded by a fixture, so it can never leak into the
production mapper.
"""

import pytest

from repro.core.mapper import BerkeleyMapper


class _WireDroppingMapper(BerkeleyMapper):
    """Correct mapper until a fault exists; then it loses one cable."""

    def run(self):
        result = super().run()
        faults = getattr(self._svc, "faults", None)
        if faults is not None and faults.dead_wires:
            net = result.network
            sw_wires = [
                w
                for w in net.wires
                if w.a.node in net.switches and w.b.node in net.switches
            ]
            if sw_wires:
                victim = sorted(sw_wires, key=lambda w: (w.a.node, w.a.port))[-1]
                net.disconnect(victim)
        return result


@pytest.fixture()
def buggy_mapper_factory():
    def factory(svc, depth):
        return _WireDroppingMapper(
            svc, search_depth=depth, host_first=False, max_explorations=5000
        )

    return factory
