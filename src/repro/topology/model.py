"""The formal network model of Section 2.1 of the paper.

The network ``N`` is a finite multigraph on ``H ∪ S`` (hosts and switches,
disjoint). Edges are *wires*. Each end of every wire is labeled with a port
number such that no two wire ends incident on the same node share a port
number. A wire end is uniquely denoted by its ``(node, port)`` pair. A switch
has eight allowable port numbers ``{0, ..., 7}`` (the radix is configurable
for experimentation); a host has one port, ``0``.

This module deliberately does *not* use :mod:`networkx` as the primary
representation: the mapping algorithm's semantics depend on port-level
precision (which port a wire enters, relative turns through switches) that a
plain multigraph does not carry. :meth:`Network.to_networkx` provides a
bridge for graph-theoretic analyses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.topology.delta import Delta, DeltaJournal, EMPTY_DELTA

__all__ = [
    "HOST_PORT",
    "SWITCH_RADIX",
    "Network",
    "NodeKind",
    "PortRef",
    "TopologyError",
    "Wire",
]

#: Default switch radix: Myrinet 8-port crossbars.
SWITCH_RADIX = 8

#: The single port number a host owns.
HOST_PORT = 0


class TopologyError(ValueError):
    """Raised when an operation would violate the network model invariants."""


class NodeKind(enum.Enum):
    """The two node types of the formal model."""

    HOST = "host"
    SWITCH = "switch"


@dataclass(frozen=True, slots=True, order=True)
class PortRef:
    """A wire end: the ``(node, port)`` pair of Section 2.1."""

    node: str
    port: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.node}:{self.port}"


@dataclass(frozen=True, slots=True)
class Wire:
    """An undirected wire between two ports.

    ``a`` and ``b`` are stored in sorted order so that a wire compares equal
    regardless of the orientation it was declared in. ``key`` disambiguates
    parallel wires between the same port pairs in serialized form (ports are
    exclusive, so true duplicates cannot occur; the key is a stable id).
    """

    a: PortRef
    b: PortRef
    key: int = 0

    def __post_init__(self) -> None:
        if self.b < self.a:
            lo, hi = self.b, self.a
            object.__setattr__(self, "a", lo)
            object.__setattr__(self, "b", hi)

    def other_end(self, end: PortRef) -> PortRef:
        """Return the opposite end of this wire.

        For a loopback wire (both ends on the same node) the ends are still
        distinct ports, so identity is well defined.
        """
        if end == self.a:
            return self.b
        if end == self.b:
            return self.a
        raise TopologyError(f"{end} is not an end of wire {self}")

    @property
    def nodes(self) -> tuple[str, str]:
        return (self.a.node, self.b.node)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.a}--{self.b}"


@dataclass(slots=True)
class _NodeInfo:
    kind: NodeKind
    radix: int
    meta: dict = field(default_factory=dict)


class Network:
    """A system-area network: hosts, switches, ports and wires.

    Invariants enforced on every mutation:

    - node names are unique across hosts and switches;
    - hosts expose only port 0, switches ports ``0..radix-1``;
    - at most one wire per ``(node, port)``;
    - a wire may not connect a port to itself (a physical cable has two
      plugs), but loopback cables between two ports of one switch are legal.

    The class is a faithful substrate for the mapping algorithm: everything
    the mapper can observe in-band is derived from this structure by the
    simulator package.
    """

    def __init__(self, *, default_radix: int = SWITCH_RADIX) -> None:
        if default_radix < 1:
            raise TopologyError("switch radix must be positive")
        self._default_radix = default_radix
        self._nodes: dict[str, _NodeInfo] = {}
        self._wires: dict[int, Wire] = {}
        self._port_map: dict[PortRef, int] = {}
        self._next_wire_key = 0
        self._journal = DeltaJournal()
        self._epoch = 0

    def _bump_epoch(self, delta: Delta = EMPTY_DELTA) -> None:
        """The canonical epoch bump: every mutator's last act (SAN012).

        ``delta`` is the wire-end footprint of the mutation being
        committed; it is journaled under the epoch being closed, so
        consumers holding an older epoch can learn *what* changed (see
        :meth:`affected_since`) instead of only *that* something changed.
        """
        self._journal.record(delta)
        self._epoch += 1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_host(self, name: str, **meta: object) -> str:
        """Add a host node. Hosts have the single port 0."""
        self._check_fresh(name)
        self._nodes[name] = _NodeInfo(NodeKind.HOST, 1, dict(meta))
        self._bump_epoch()
        return name

    def add_switch(self, name: str, *, radix: int | None = None, **meta: object) -> str:
        """Add a switch node with ports ``0..radix-1`` (default 8)."""
        self._check_fresh(name)
        r = self._default_radix if radix is None else radix
        if r < 1:
            raise TopologyError("switch radix must be positive")
        self._nodes[name] = _NodeInfo(NodeKind.SWITCH, r, dict(meta))
        self._bump_epoch()
        return name

    def connect(
        self,
        node_a: str,
        port_a: int,
        node_b: str,
        port_b: int,
    ) -> Wire:
        """Run a wire between two free ports and return it."""
        ra = self._port_ref(node_a, port_a)
        rb = self._port_ref(node_b, port_b)
        if ra == rb:
            raise TopologyError(f"cannot wire port {ra} to itself")
        for ref in (ra, rb):
            if ref in self._port_map:
                raise TopologyError(f"port {ref} already wired")
        wire = Wire(ra, rb, key=self._next_wire_key)
        self._next_wire_key += 1
        self._wires[wire.key] = wire
        self._port_map[ra] = wire.key
        self._port_map[rb] = wire.key
        delta = Delta(
            added=frozenset({(ra.node, ra.port), (rb.node, rb.port)})
        )
        self._bump_epoch(delta)
        return wire

    def disconnect(self, wire: Wire) -> None:
        """Remove a wire (e.g. to model a pulled cable)."""
        stored = self._wires.pop(wire.key, None)
        if stored is None:
            raise TopologyError(f"wire {wire} not in network")
        del self._port_map[stored.a]
        del self._port_map[stored.b]
        delta = Delta(
            removed=frozenset(
                {
                    (stored.a.node, stored.a.port),
                    (stored.b.node, stored.b.port),
                }
            )
        )
        self._bump_epoch(delta)

    def remove_node(self, name: str) -> None:
        """Remove a node and every wire incident on it."""
        info = self._nodes.get(name)
        if info is None:
            raise TopologyError(f"no such node: {name}")
        for wire in list(self.wires_of(name)):
            self.disconnect(wire)
        # The disconnects above journaled the wired ends; this final delta
        # covers the *unwired* ones too, so caches keyed on the node's mere
        # existence (e.g. a memoized "source host not attached") also drop.
        delta = Delta(
            removed=frozenset((name, port) for port in range(info.radix))
        )
        del self._nodes[name]
        self._bump_epoch(delta)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def default_radix(self) -> int:
        return self._default_radix

    @property
    def topology_epoch(self) -> int:
        """Monotone mutation counter: bumped by every structural change.

        Derived structures (the incremental path-evaluation trie, routing
        adjacency) compare this against the epoch they were built at to
        decide whether their cached view of the network is still valid.
        """
        return self._epoch

    def affected_since(self, epoch: int) -> Delta | None:
        """The merged wire-end delta of every mutation since ``epoch``.

        Returns ``None`` when ``epoch`` has fallen out of the bounded
        journal window — the caller must then rebuild from scratch, which
        is also the only sound interpretation. See
        :mod:`repro.topology.delta` for the delta contract.
        """
        return self._journal.since(epoch, self._epoch)

    def kind(self, name: str) -> NodeKind:
        return self._info(name).kind

    def is_host(self, name: str) -> bool:
        return self._info(name).kind is NodeKind.HOST

    def is_switch(self, name: str) -> bool:
        return self._info(name).kind is NodeKind.SWITCH

    def radix(self, name: str) -> int:
        """Number of ports on the node (1 for hosts)."""
        return self._info(name).radix

    def meta(self, name: str) -> Mapping[str, object]:
        """User metadata attached at node creation (e.g. ``utility=True``)."""
        return self._info(name).meta

    @property
    def hosts(self) -> list[str]:
        return [n for n, i in self._nodes.items() if i.kind is NodeKind.HOST]

    @property
    def switches(self) -> list[str]:
        return [n for n, i in self._nodes.items() if i.kind is NodeKind.SWITCH]

    @property
    def nodes(self) -> list[str]:
        return list(self._nodes)

    @property
    def wires(self) -> list[Wire]:
        return list(self._wires.values())

    @property
    def n_hosts(self) -> int:
        return sum(1 for i in self._nodes.values() if i.kind is NodeKind.HOST)

    @property
    def n_switches(self) -> int:
        return sum(1 for i in self._nodes.values() if i.kind is NodeKind.SWITCH)

    @property
    def n_wires(self) -> int:
        return len(self._wires)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def wire_at(self, node: str, port: int) -> Wire | None:
        """The wire plugged into ``(node, port)``, or ``None`` if the port is free."""
        key = self._port_map.get(self._port_ref(node, port))
        return None if key is None else self._wires[key]

    def neighbor_at(self, node: str, port: int) -> PortRef | None:
        """The port at the far end of the wire at ``(node, port)``, if any.

        This is the primitive the routing engine uses: "the neighbor of
        ``(n_i, p_i + a_i)`` in N, when such a neighbor exists" (Section 2.2).
        """
        wire = self.wire_at(node, port)
        if wire is None:
            return None
        return wire.other_end(PortRef(node, port))

    def wires_of(self, node: str) -> Iterator[Wire]:
        """All wires with at least one end on ``node`` (loopbacks yielded once)."""
        info = self._info(node)
        seen: set[int] = set()
        for port in range(info.radix):
            key = self._port_map.get(PortRef(node, port))
            if key is not None and key not in seen:
                seen.add(key)
                yield self._wires[key]

    def degree(self, node: str) -> int:
        """Number of wired ports on ``node`` (a loopback cable counts twice)."""
        info = self._info(node)
        return sum(
            1 for port in range(info.radix) if PortRef(node, port) in self._port_map
        )

    def free_ports(self, node: str) -> list[int]:
        info = self._info(node)
        return [
            p for p in range(info.radix) if PortRef(node, p) not in self._port_map
        ]

    def used_ports(self, node: str) -> list[int]:
        info = self._info(node)
        return [p for p in range(info.radix) if PortRef(node, p) in self._port_map]

    def host_attachment(self, host: str) -> PortRef | None:
        """The switch port a host is plugged into (hosts have one wire)."""
        if not self.is_host(host):
            raise TopologyError(f"{host} is not a host")
        return self.neighbor_at(host, HOST_PORT)

    # ------------------------------------------------------------------
    # validation / export
    # ------------------------------------------------------------------
    def validate(self, *, require_connected: bool = False) -> None:
        """Check the standing assumptions of the paper's model.

        Raises :class:`TopologyError` when the network violates the system
        model: at least one switch and two hosts, every host wired to a
        switch, and (optionally) connectivity.
        """
        if self.n_switches < 1:
            raise TopologyError("model requires at least one switch")
        if self.n_hosts < 2:
            raise TopologyError("model requires at least two hosts")
        for host in self.hosts:
            attach = self.host_attachment(host)
            if attach is None:
                raise TopologyError(f"host {host} is not attached to the network")
            if not self.is_switch(attach.node):
                raise TopologyError(
                    f"host {host} is wired to {attach.node}, which is not a switch"
                )
        if require_connected and not self.is_connected():
            raise TopologyError("network is not connected")

    def is_connected(self) -> bool:
        if not self._nodes:
            return True
        import networkx as nx

        g = self.to_networkx()
        return nx.is_connected(nx.Graph(g)) if g.number_of_nodes() else True

    def to_networkx(self):
        """Export as a :class:`networkx.MultiGraph`.

        Node attributes: ``kind`` ("host"/"switch"). Edge keys are wire keys;
        edge attributes ``port_u``/``port_v`` give the port at each endpoint
        (``port_u`` belongs to the lexicographically addressed ``u``
        networkx endpoint as stored in ``Wire.a``).
        """
        import networkx as nx

        g = nx.MultiGraph()
        for name, info in self._nodes.items():
            g.add_node(name, kind=info.kind.value, radix=info.radix)
        for wire in self._wires.values():
            g.add_edge(
                wire.a.node,
                wire.b.node,
                key=wire.key,
                port_a=wire.a.port,
                port_b=wire.b.port,
            )
        return g

    def copy(self) -> "Network":
        """Deep structural copy (metadata dicts are shallow-copied)."""
        dup = Network(default_radix=self._default_radix)
        for name, info in self._nodes.items():
            if info.kind is NodeKind.HOST:
                dup.add_host(name, **info.meta)
            else:
                dup.add_switch(name, radix=info.radix, **info.meta)
        for wire in self._wires.values():
            dup.connect(wire.a.node, wire.a.port, wire.b.node, wire.b.port)
        return dup

    def induced_subnetwork(self, keep: Iterable[str]) -> "Network":
        """The subnetwork induced on ``keep`` (wires with both ends kept)."""
        keep_set = set(keep)
        sub = Network(default_radix=self._default_radix)
        for name in keep_set:
            info = self._info(name)
            if info.kind is NodeKind.HOST:
                sub.add_host(name, **info.meta)
            else:
                sub.add_switch(name, radix=info.radix, **info.meta)
        for wire in self._wires.values():
            if wire.a.node in keep_set and wire.b.node in keep_set:
                sub.connect(wire.a.node, wire.a.port, wire.b.node, wire.b.port)
        return sub

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network(hosts={self.n_hosts}, switches={self.n_switches}, "
            f"wires={self.n_wires})"
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_fresh(self, name: str) -> None:
        if name in self._nodes:
            raise TopologyError(f"duplicate node name: {name}")

    def _info(self, name: str) -> _NodeInfo:
        info = self._nodes.get(name)
        if info is None:
            raise TopologyError(f"no such node: {name}")
        return info

    def _port_ref(self, node: str, port: int) -> PortRef:
        info = self._info(node)
        if not 0 <= port < info.radix:
            raise TopologyError(
                f"port {port} out of range for {node} (radix {info.radix})"
            )
        return PortRef(node, port)
