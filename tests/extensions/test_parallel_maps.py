"""Parallel mapping and partial-map merging tests (Section 6)."""

import pytest

from repro.extensions.parallel_maps import (
    MergeConflict,
    PartialMap,
    map_local_region,
    merge_partial_maps,
    parallel_mapping_study,
)
from repro.topology.analysis import core_network, recommended_search_depth
from repro.topology.builder import NetworkBuilder
from repro.topology.generators import build_subcluster
from repro.topology.isomorphism import match_networks


def _view(builder_fn) -> PartialMap:
    net = builder_fn()
    return PartialMap(owner=sorted(net.hosts)[0], network=net, probes=0,
                      elapsed_ms=0.0)


def _left_view():
    b = NetworkBuilder()
    b.switches("sA", "sB")
    b.hosts("h0", "h1", "h2")
    b.attach("h0", "sA", port=0)
    b.attach("h1", "sA", port=1)
    b.attach("h2", "sB", port=0)
    b.link("sA", "sB", port_a=4, port_b=3)
    return b.build()


def _right_view():
    # The same physical region seen by another mapper: switch names differ
    # and all of its ports are shifted, plus it knows one more switch.
    b = NetworkBuilder()
    b.switches("x1", "x2", "x3")
    b.hosts("h1", "h2", "h3")
    b.attach("h1", "x1", port=3)  # sA shifted by +2
    b.attach("h2", "x2", port=1)  # sB shifted by +1
    b.link("x1", "x2", port_a=6, port_b=4)
    b.link("x2", "x3", port_a=5, port_b=0)
    b.attach("h3", "x3", port=2)
    return b.build()


class TestMergeMechanics:
    def test_single_view_passthrough(self):
        views = [_view(_left_view)]
        (merged,) = merge_partial_maps(views)
        assert match_networks(merged, _left_view())

    def test_two_overlapping_views_union(self):
        (merged,) = merge_partial_maps([_view(_left_view), _view(_right_view)])
        # Union: 4 hosts, 3 switches, wires = 4 host links + 2 switch links.
        assert merged.n_hosts == 4
        assert merged.n_switches == 3
        assert merged.n_wires == 6
        # h0 (only in left) and h3 (only in right) are now in one map,
        # attached to corresponding switches.
        a0 = merged.host_attachment("h0")
        a1 = merged.host_attachment("h1")
        assert a0.node == a1.node  # both on the sA/x1 switch

    def test_merge_is_order_insensitive(self):
        a = merge_partial_maps([_view(_left_view), _view(_right_view)])
        b = merge_partial_maps([_view(_right_view), _view(_left_view)])
        assert match_networks(a[0], b[0])

    def test_disjoint_views_stay_islands(self):
        def other_region():
            b = NetworkBuilder()
            b.switch("sZ")
            b.hosts("h8", "h9")
            b.attach("h8", "sZ")
            b.attach("h9", "sZ")
            return b.build()

        islands = merge_partial_maps([_view(_left_view), _view(other_region)])
        assert len(islands) == 2

    def test_bridging_view_joins_islands(self):
        def other_region():
            b = NetworkBuilder()
            b.switch("sZ")
            b.hosts("h8", "h9")
            b.attach("h8", "sZ", port=0)
            b.attach("h9", "sZ", port=1)
            return b.build()

        def bridge():
            # Sees h2's switch and h8's switch and the cable between them.
            # Port 5 on h2's switch is free in the left view (3 holds the
            # sA cable), so the views are consistent.
            b = NetworkBuilder()
            b.switches("p", "q")
            b.hosts("h2", "h8")
            b.attach("h2", "p", port=0)
            b.attach("h8", "q", port=0)
            b.link("p", "q", port_a=5, port_b=4)
            return b.build()

        islands = merge_partial_maps(
            [_view(_left_view), _view(other_region), _view(bridge)]
        )
        assert len(islands) == 1
        merged = islands[0]
        assert {"h0", "h1", "h2", "h8", "h9"} <= set(merged.hosts)


class TestConflicts:
    def test_host_vs_switch_type_clash(self):
        def lying_view():
            # Claims the port holding h1 leads to a switch instead.
            b = NetworkBuilder()
            b.switches("sA", "zz")
            b.hosts("h0", "hx")
            b.attach("h0", "sA", port=0)
            b.link("sA", "zz", port_a=1, port_b=0)  # truth: port 1 is h1
            b.attach("hx", "zz", port=1)
            return b.build()

        with pytest.raises(MergeConflict):
            merge_partial_maps([_view(_left_view), _view(lying_view)])

    def test_satisfiable_lie_merges_into_alternative_world(self):
        """A view claiming h2 shares a switch with h1 is consistent with
        SOME physical network (switches are anonymous: the claim just
        unifies the two switches and reinterprets their cable as a
        loopback). The merge must accept it — detecting such lies is
        impossible in principle, not an implementation gap."""

        def plausible_lie():
            b = NetworkBuilder()
            b.switches("sA")
            b.hosts("h1", "h2")
            b.attach("h1", "sA", port=0)
            b.attach("h2", "sA", port=1)
            return b.build()

        (merged,) = merge_partial_maps([_view(_left_view), _view(plausible_lie)])
        # One unified switch with a loopback cable.
        assert merged.n_switches == 1
        loops = [w for w in merged.wires if w.a.node == w.b.node]
        assert len(loops) == 1

    def test_contradictory_port_spacing(self):
        def skewed_view():
            b = NetworkBuilder()
            b.switches("y")
            b.hosts("h0", "h1")
            b.attach("h0", "y", port=0)
            b.attach("h1", "y", port=2)  # left view says spacing 1
            return b.build()

        with pytest.raises(MergeConflict):
            merge_partial_maps([_view(_left_view), _view(skewed_view)])


class TestOnRealTopology:
    def test_local_views_merge_to_truth(self, subcluster_c):
        hosts = sorted(subcluster_c.hosts)
        mappers = hosts[::5] + ["C-svc"]
        report = parallel_mapping_study(
            subcluster_c, mappers, local_depth=5, max_explorations=60
        )
        assert report.islands == 1
        islands = merge_partial_maps(report.partials)
        assert match_networks(islands[0], core_network(subcluster_c))
        # Parallel wall clock is the max of local runs, far below the sum.
        assert report.max_local_ms < report.sum_local_ms / 2

    def test_sparse_mappers_give_partial_but_sound_map(self, subcluster_c):
        report = parallel_mapping_study(
            subcluster_c,
            ["C-n00", "C-n34"],
            local_depth=3,
            max_explorations=25,
        )
        islands = merge_partial_maps(report.partials)
        for island in islands:
            assert set(island.hosts) <= set(subcluster_c.hosts)
            assert island.n_switches <= subcluster_c.n_switches

    def test_local_region_mapper_basic(self, subcluster_c):
        partial = map_local_region(
            subcluster_c, "C-n00", local_depth=2, max_explorations=10
        )
        assert partial.owner == "C-n00"
        assert "C-n00" in partial.network.hosts
        assert partial.probes > 0
