"""A small asyncio client for the map server.

One :class:`MapClient` holds one TCP connection and issues requests
sequentially over it (the protocol has no request IDs — responses come
back in order). Concurrency comes from opening several clients: the load
generator opens one per simulated tenant operator plus a pool of route
queriers.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.service.protocol import ProtocolError, read_frame, write_frame

__all__ = ["MapClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The server answered with ``ok: false``.

    Carries the machine-readable ``code`` so callers can branch on it
    (``unmapped`` and ``no-route`` are normal service states, not bugs).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


class MapClient:
    """One connection to a :class:`repro.service.server.MapServer`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    async def __aenter__(self) -> "MapClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass  # server already gone; the socket is closed either way
            self._writer = None
            self._reader = None

    async def request(self, op: str, **fields: Any) -> dict:
        """Send one request, await its response; raises on ``ok: false``."""
        response = await self.request_raw(op, **fields)
        if not response.get("ok"):
            raise ServiceError(
                str(response.get("error", "error")),
                str(response.get("message", response)),
            )
        return response

    async def request_raw(self, op: str, **fields: Any) -> dict:
        """Send one request and return the response dict verbatim."""
        if self._reader is None or self._writer is None:
            raise RuntimeError("client is not connected")
        async with self._lock:
            await write_frame(self._writer, {"op": op, **fields})
            response = await read_frame(self._reader)
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        if not isinstance(response, dict):
            raise ProtocolError(f"server sent a non-object response: {response!r}")
        return response

    # Convenience wrappers mirroring the op vocabulary ------------------
    async def ping(self) -> dict:
        return await self.request("ping")

    async def tenants(self, *, include_hosts: bool = False) -> list[dict]:
        fields: dict[str, Any] = {"include_hosts": True} if include_hosts else {}
        return (await self.request("tenants", **fields))["tenants"]

    async def map(self, tenant: str, *, wait: bool = True) -> dict:
        return await self.request_raw("map", tenant=tenant, wait=wait)

    async def route(self, tenant: str, src: str, dst: str) -> dict:
        return await self.request_raw("route", tenant=tenant, src=src, dst=dst)

    async def verify(self, tenant: str, *, sample: int | None = None) -> dict:
        fields: dict[str, Any] = {"tenant": tenant}
        if sample is not None:
            fields["sample"] = sample
        return await self.request_raw("verify", **fields)

    async def stats(self, tenant: str | None = None) -> dict:
        if tenant is None:
            return await self.request("stats")
        return await self.request("stats", tenant=tenant)

    async def cut(
        self,
        tenant: str,
        node: str | None = None,
        port: int | None = None,
        *,
        auto: bool = False,
    ) -> dict:
        if auto:
            return await self.request_raw("cut", tenant=tenant, auto=True)
        return await self.request_raw("cut", tenant=tenant, node=node, port=port)

    async def shutdown(self) -> dict:
        return await self.request("shutdown")
