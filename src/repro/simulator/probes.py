"""The probe interface: everything a mapper may ask of the network.

Section 2.3: a *probe* is a pair of tests built on the same turn string
``a1...ak`` (all ``a_i != 0``):

- SWITCH-PROBE — send ``a1...ak 0 -ak...-a1``; receiving this loopback
  message back proves an output port of a switch k hops away is connected
  to another switch;
- HOST-PROBE — send ``a1...ak``; a reply identifies (uniquely) the host at
  the end of the path.

Probing computes the response function
``R: turn-strings -> H ∪ {"switch", "nothing"}``. Mapping algorithms only
ever see ``R`` plus the passage of (simulated) time; they never touch the
:class:`~repro.topology.model.Network` itself. This boundary is what makes
the mapper implementations honest reproductions of in-band discovery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.simulator.turns import Turns

__all__ = ["ProbeKind", "ProbeRecord", "ProbeService", "ProbeStats"]


class ProbeKind(enum.Enum):
    HOST = "host"
    SWITCH = "switch"


@dataclass(frozen=True, slots=True)
class ProbeRecord:
    """One probe in the trace: kind, turns, outcome, time charged (µs)."""

    kind: ProbeKind
    turns: Turns
    hit: bool
    cost_us: float
    response: str | None = None


@dataclass
class ProbeStats:
    """Accounting in the vocabulary of Figure 6.

    ``host_probes``/``host_hits`` and ``switch_probes``/``switch_hits``
    correspond directly to the columns of the Figure 6 table; ``elapsed_us``
    accumulates the timing model's per-probe costs.
    """

    host_probes: int = 0
    host_hits: int = 0
    switch_probes: int = 0
    switch_hits: int = 0
    elapsed_us: float = 0.0
    trace: list[ProbeRecord] | None = None

    def record(self, rec: ProbeRecord) -> None:
        if rec.kind is ProbeKind.HOST:
            self.host_probes += 1
            self.host_hits += rec.hit
        else:
            self.switch_probes += 1
            self.switch_hits += rec.hit
        self.elapsed_us += rec.cost_us
        if self.trace is not None:
            self.trace.append(rec)

    @property
    def total_probes(self) -> int:
        return self.host_probes + self.switch_probes

    @property
    def total_hits(self) -> int:
        return self.host_hits + self.switch_hits

    @property
    def host_hit_ratio(self) -> float:
        return self.host_hits / self.host_probes if self.host_probes else 0.0

    @property
    def switch_hit_ratio(self) -> float:
        return self.switch_hits / self.switch_probes if self.switch_probes else 0.0

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_us / 1000.0

    def snapshot(self) -> "ProbeStats":
        """Copy of the counters (without the trace)."""
        return ProbeStats(
            host_probes=self.host_probes,
            host_hits=self.host_hits,
            switch_probes=self.switch_probes,
            switch_hits=self.switch_hits,
            elapsed_us=self.elapsed_us,
        )


@runtime_checkable
class ProbeService(Protocol):
    """What a mapper may do: send the two probe kinds, read its own clock."""

    @property
    def mapper_host(self) -> str:
        """The host this service injects probes from."""
        ...  # pragma: no cover - protocol

    @property
    def stats(self) -> ProbeStats:
        ...  # pragma: no cover - protocol

    def probe_host(self, turns: Turns) -> str | None:
        """HOST-PROBE: the responding host's unique name, or None."""
        ...  # pragma: no cover - protocol

    def probe_switch(self, turns: Turns) -> bool:
        """SWITCH-PROBE: True iff the loopback message returned."""
        ...  # pragma: no cover - protocol
