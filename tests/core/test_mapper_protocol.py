"""Protocol-conformance suite: every registered mapper through one door.

Each registry entry must (1) build through ``create_mapper``/
``MapperSpec.create``, (2) return a ``MapResult`` whose network is
isomorphic to the actual core on the paper's testbeds, (3) honor its
declared capability flags (absent features raise ``TypeError`` at
construction, they are not silently dropped), and (4) be byte-for-byte
deterministic across runs. A final guard pins registry-built Berkeley to
the committed Figure 4/5 probe counts so the refactor can never drift
the paper numbers.
"""

from __future__ import annotations

import json

import pytest

from repro.core.mapper import BerkeleyMapper, MapResult
from repro.core.mapper_protocol import (
    Mapper,
    UnknownMapperError,
    build_mapper_service,
    create_mapper,
    get_mapper_spec,
    mapper_names,
    resolve_mapper_factory,
)
from repro.simulator.stack import build_service_stack
from repro.topology.analysis import core_network, recommended_search_depth
from repro.topology.generators import build_full_now, build_subcluster
from repro.topology.isomorphism import match_networks
from repro.topology.serialize import network_to_dict

ALL_MAPPERS = [
    "berkeley",
    "berkeley-infogain",
    "coupon",
    "myricom",
    "selfid",
    "spanning-tree",
]


def _map_once(name: str, net, host: str) -> MapResult:
    spec = get_mapper_spec(name)
    svc = build_mapper_service(spec, net, host)
    depth = recommended_search_depth(net, host)
    kwargs = spec.accepted_kwargs({"host_first": False})
    return spec.create(svc, search_depth=depth, **kwargs).map()


@pytest.fixture(scope="module")
def now_results():
    """One full-NOW mapping per registered algorithm, shared module-wide."""
    net = build_full_now()
    return net, {name: _map_once(name, net, "C-svc") for name in ALL_MAPPERS}


def test_registry_lists_every_builtin_algorithm():
    assert mapper_names() == ALL_MAPPERS


def test_unknown_name_raises_with_the_known_names():
    with pytest.raises(UnknownMapperError) as exc:
        get_mapper_spec("gradient-descent")
    assert "berkeley" in str(exc.value)


@pytest.mark.parametrize("name", ALL_MAPPERS)
def test_maps_subcluster_c_isomorphically(name):
    net = build_subcluster("C")
    result = _map_once(name, net, "C-svc")
    mapper = create_mapper(
        name,
        build_mapper_service(name, net, "C-svc"),
        search_depth=recommended_search_depth(net, "C-svc"),
    )
    assert isinstance(mapper, Mapper)
    assert isinstance(result, MapResult)
    report = match_networks(result.network, core_network(net))
    assert report, f"{name}: {report.reason}"


@pytest.mark.parametrize("name", ALL_MAPPERS)
def test_maps_full_now_isomorphically(name, now_results):
    net, results = now_results
    report = match_networks(results[name].network, core_network(net))
    assert report, f"{name}: {report.reason}"


@pytest.mark.parametrize("name", ALL_MAPPERS)
def test_two_runs_are_byte_identical(name):
    net = build_subcluster("C")

    def digest():
        result = _map_once(name, net, "C-svc")
        return (
            result.stats.total_probes,
            json.dumps(network_to_dict(result.network), sort_keys=True),
        )

    assert digest() == digest()


@pytest.mark.parametrize("name", ALL_MAPPERS)
def test_capability_flags_match_the_instance(name):
    net = build_subcluster("C")
    spec = get_mapper_spec(name)
    svc = build_mapper_service(spec, net, "C-svc")
    mapper = spec.create(svc, search_depth=3)
    assert callable(getattr(mapper, "seed_with", None)) == (
        spec.capabilities.seed_with
    )
    for flag, kwargs in (
        ("batch", {"batch": True}),
        ("profiler", {"profiler": object()}),
    ):
        if getattr(spec.capabilities, flag):
            continue
        with pytest.raises(TypeError):
            spec.create(svc, search_depth=3, **kwargs)


def test_registry_construction_matches_direct_and_pins_figure5():
    """The refactor guard: registry-built Berkeley IS BerkeleyMapper.

    Probe count and produced network must be byte-identical between the
    two construction paths, and the count itself is pinned to the
    committed ``benchmarks/BENCH_mapping.json`` Figure 5 number.
    """
    net = build_full_now()
    depth = recommended_search_depth(net, "C-svc")

    svc = build_service_stack(net, "C-svc")
    direct = BerkeleyMapper(svc, search_depth=depth, host_first=False).run()
    svc = build_service_stack(net, "C-svc")
    via_registry = create_mapper(
        "berkeley", svc, search_depth=depth, host_first=False
    ).map()

    assert direct.stats.total_probes == via_registry.stats.total_probes == 2929
    assert json.dumps(
        network_to_dict(direct.network), sort_keys=True
    ) == json.dumps(network_to_dict(via_registry.network), sort_keys=True)


def test_registry_construction_pins_figure4():
    net = build_subcluster("C")
    result = _map_once("berkeley", net, "C-svc")
    assert result.stats.total_probes == 760


def test_infogain_beats_default_probe_order(now_results):
    """The acceptance criterion: learned ordering saves probes on the
    paper's own system (and on its C subcluster)."""
    _net, results = now_results
    assert (
        results["berkeley-infogain"].stats.total_probes
        < results["berkeley"].stats.total_probes
    )
    small = build_subcluster("C")
    assert (
        _map_once("berkeley-infogain", small, "C-svc").stats.total_probes
        < _map_once("berkeley", small, "C-svc").stats.total_probes
    )


def test_resolve_mapper_factory_filters_driver_kwargs():
    """Driver-wide defaults reach algorithms that understand them and are
    dropped for the rest — myricom has no ``host_first``."""
    net = build_subcluster("C")
    depth = recommended_search_depth(net, "C-svc")
    for name in ("berkeley", "myricom"):
        factory = resolve_mapper_factory(
            name, host_first=False, max_explorations=50_000
        )
        svc = build_mapper_service(name, net, "C-svc")
        result = factory(svc, depth).map()
        assert match_networks(result.network, core_network(net))


def test_resolve_mapper_factory_passes_callables_through():
    sentinel = object()

    def factory(svc, depth):
        return sentinel

    assert resolve_mapper_factory(factory) is factory
