"""Inter-host-group capacity analysis.

Figure 5's caption: "Additional switches can be added to increase the
number of roots, thereby increasing the number of simultaneously usable
routes between subclusters as well as the bisection bandwidth."

With unit-capacity links, the number of simultaneously usable edge-disjoint
routes between two host groups is exactly the max-flow between them
(Menger), and multiplying by the link rate gives bandwidth. This module
computes:

- :func:`host_cut_capacity` — max-flow (in links) between two host sets;
- :func:`subcluster_cut` — the same between two NOW subclusters by name
  prefix;
- :func:`bisection_links` — the minimum over a set of balanced host
  bisections (exact bisection is NP-hard; for the NOW systems the natural
  subcluster splits are the meaningful ones and are evaluated exactly).
"""

from __future__ import annotations

from itertools import combinations

import networkx as nx

from repro.topology.model import Network

__all__ = [
    "LINK_GBPS",
    "bisection_links",
    "host_cut_capacity",
    "subcluster_cut",
]

#: Myrinet link data rate (Section 1.1), for converting links to bandwidth.
LINK_GBPS = 1.28

_SRC = "__src__"
_DST = "__dst__"


def _flow_graph(net: Network) -> nx.DiGraph:
    g = nx.DiGraph()
    for wire in net.wires:
        u, v = wire.nodes
        if u == v:
            continue
        for a, b in ((u, v), (v, u)):
            if g.has_edge(a, b):
                g[a][b]["capacity"] += 1
            else:
                g.add_edge(a, b, capacity=1)
    return g


def host_cut_capacity(
    net: Network, group_a: set[str], group_b: set[str]
) -> int:
    """Max simultaneously usable edge-disjoint paths between host groups.

    Host attachment links count (each host contributes at most one unit,
    as in reality). Groups must be disjoint, non-empty host subsets.
    """
    group_a, group_b = set(group_a), set(group_b)
    if not group_a or not group_b or group_a & group_b:
        raise ValueError("groups must be disjoint non-empty host sets")
    for h in group_a | group_b:
        if not net.is_host(h):
            raise ValueError(f"{h} is not a host")
    g = _flow_graph(net)
    for h in group_a:
        g.add_edge(_SRC, h, capacity=len(group_a))
    for h in group_b:
        g.add_edge(h, _DST, capacity=len(group_b))
    if _SRC not in g or _DST not in g:
        return 0
    return int(nx.maximum_flow_value(g, _SRC, _DST))


def subcluster_cut(net: Network, prefix_a: str, prefix_b: str) -> int:
    """Cut capacity between two subclusters of a composed NOW system."""
    group_a = {h for h in net.hosts if h.startswith(prefix_a + "-")}
    group_b = {h for h in net.hosts if h.startswith(prefix_b + "-")}
    return host_cut_capacity(net, group_a, group_b)


def bisection_links(
    net: Network, partitions: list[tuple[set[str], set[str]]] | None = None
) -> int:
    """Minimum cut over the supplied balanced host bisections.

    Without explicit partitions, hosts are split at the sorted-name median
    (one natural bisection; callers with structure, like the NOW systems,
    should pass the meaningful splits).
    """
    if partitions is None:
        hosts = sorted(net.hosts)
        mid = len(hosts) // 2
        partitions = [(set(hosts[:mid]), set(hosts[mid:]))]
    return min(host_cut_capacity(net, a, b) for a, b in partitions)
