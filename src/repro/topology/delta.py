"""Delta journal: what changed between two epochs, as a wire-end set.

``Network`` and ``FaultModel`` bump a monotone epoch counter on every
mutation; derived caches (the path-evaluation trie, a seeded remap) key
their validity on it. A bare counter only supports the wholesale answer
"something changed, drop everything". This module records *what* changed:
every ``_bump_epoch`` call journals a :class:`Delta` describing the wire
ends whose connectivity the mutation touched, and a consumer holding an
older epoch asks :meth:`DeltaJournal.since` for the merged delta covering
the gap.

The contract (documented for consumers in ``docs/INCREMENTAL.md``):

- ``removed`` — wire ends whose connectivity was taken away (a cable cut,
  a node unplugged, a wire entering the dead set). Any cached structure
  whose derivation crossed such an end is stale.
- ``added`` — wire ends that gained connectivity (a cable plugged, a wire
  leaving the dead set). Cached *absences* (a memoized NO_SUCH_WIRE, a
  pruned search window) keyed on such an end are stale.
- ``unbounded`` — the mutation cannot be described by a wire set (e.g. a
  fault-probability change). Consumers must treat the whole derived
  structure as suspect.
- ``since`` returning ``None`` — the requested epoch has fallen out of the
  journal's bounded window; same consequence as ``unbounded``.

A delta never under-reports: every mutator journals at least the ends it
touched, so "my footprint is disjoint from the delta" is a sound proof of
freshness. Over-reporting (journaling ends that did not actually change)
costs only wasted invalidation, never correctness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "Delta",
    "DeltaJournal",
    "EMPTY_DELTA",
    "Endpoint",
    "UNBOUNDED_DELTA",
]

#: A wire end as a plain ``(node, port)`` tuple — the same flat key shape
#: the evaluator's adjacency memo uses, so delta sets and cache keys meet
#: without conversion.
Endpoint = tuple[str, int]


@dataclass(frozen=True, slots=True)
class Delta:
    """The wire-end footprint of one mutation (or a merged run of them)."""

    removed: frozenset[Endpoint] = field(default_factory=frozenset)
    added: frozenset[Endpoint] = field(default_factory=frozenset)
    unbounded: bool = False

    @property
    def empty(self) -> bool:
        return not (self.removed or self.added or self.unbounded)

    @property
    def endpoints(self) -> frozenset[Endpoint]:
        """Every end touched in either direction (the invalidation keyset)."""
        return self.removed | self.added

    def merge(self, other: "Delta") -> "Delta":
        """The footprint of applying ``self`` then ``other``.

        Set union is sound even when the same end is removed and later
        re-added: the end stays in both sets, and a consumer that saw the
        state *before* the pair must still re-derive anything that touched
        it (the wire there may now lead somewhere else).
        """
        if other.empty:
            return self
        if self.empty:
            return other
        return Delta(
            removed=self.removed | other.removed,
            added=self.added | other.added,
            unbounded=self.unbounded or other.unbounded,
        )


#: Shared no-change delta (node additions, metadata-only mutations).
EMPTY_DELTA = Delta()

#: Shared "not describable by wires" delta.
UNBOUNDED_DELTA = Delta(unbounded=True)


def merge_deltas(deltas: Iterable[Delta]) -> Delta:
    """Fold :meth:`Delta.merge` over a sequence (empty input → no change)."""
    out = EMPTY_DELTA
    for d in deltas:
        out = out.merge(d)
    return out


class DeltaJournal:
    """Bounded log of per-epoch deltas, indexed by epoch number.

    Entry ``i`` of the log describes the mutation that moved the owner's
    epoch from ``base + i`` to ``base + i + 1``. The log is bounded: once
    ``maxlen`` entries accumulate, the oldest are discarded and ``base``
    advances, so a consumer whose epoch predates the window gets ``None``
    from :meth:`since` and must fall back to a full rebuild. The bound
    keeps long-lived owners (a network mutated thousands of times by a
    chaos campaign) at O(window) memory regardless of lifetime.
    """

    __slots__ = ("_base", "_entries", "_maxlen")

    def __init__(self, *, maxlen: int = 256, base: int = 0) -> None:
        if maxlen < 1:
            raise ValueError("journal window must hold at least one entry")
        self._maxlen = maxlen
        self._base = base
        self._entries: deque[Delta] = deque()

    @property
    def window_base(self) -> int:
        """The oldest epoch :meth:`since` can still answer for."""
        return self._base

    def record(self, delta: Delta) -> None:
        """Journal the delta of the mutation that is bumping the epoch."""
        self._entries.append(delta)
        if len(self._entries) > self._maxlen:
            self._entries.popleft()
            self._base += 1

    def since(self, epoch: int, current_epoch: int) -> Delta | None:
        """Merged delta covering ``epoch .. current_epoch``, if in window.

        ``current_epoch`` is the owner's live counter; the caller passes it
        so the journal can verify it has journaled every bump (a defensive
        check — a gap means some mutation bypassed the journal, and the
        only sound answer is "unknown", i.e. ``None``).
        """
        if epoch == current_epoch:
            return EMPTY_DELTA
        if not self._base <= epoch < current_epoch:
            return None
        if self._base + len(self._entries) != current_epoch:
            return None
        start = epoch - self._base
        return merge_deltas(
            d for i, d in enumerate(self._entries) if i >= start
        )
