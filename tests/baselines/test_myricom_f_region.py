"""Myricom vs Berkeley on networks with a non-empty F region.

The Berkeley Algorithm's PRUNE stage removes F (host-free regions behind
switch-bridges) — Theorem 1 promises exactly `N − F`. The Myricom
Algorithm has no prune: its loopback and comparison probes work fine inside
F (switch-probes cross the bridge once each way), so it maps the *full*
network. Neither is wrong; they answer slightly different questions, and
this difference is worth pinning down in a test.
"""

from repro.baselines.myricom import MyricomMapper
from repro.core.mapper import BerkeleyMapper
from repro.simulator.quiescent import QuiescentProbeService
from repro.topology.analysis import core_network, recommended_search_depth
from repro.topology.isomorphism import match_networks


class TestFRegionBehavior:
    def test_myricom_maps_f_region_berkeley_prunes_it(self, bridge_net):
        depth = max(
            recommended_search_depth(bridge_net, "h0"),
            6,  # deep enough for Myricom to walk into the pendant chain
        )
        svc_b = QuiescentProbeService(bridge_net, "h0")
        berkeley = BerkeleyMapper(
            svc_b, search_depth=depth, host_first=False
        ).run()
        svc_m = QuiescentProbeService(bridge_net, "h0")
        myricom = MyricomMapper(svc_m, search_depth=depth).run()

        core = core_network(bridge_net)
        # Berkeley: the theorem's answer, N - F.
        assert match_networks(berkeley.network, core)
        assert berkeley.network.n_switches == 2
        # Myricom: the full network, F included.
        report = match_networks(myricom.network, bridge_net)
        assert report, report.reason
        assert myricom.network.n_switches == 4
