"""Mapping under application cross-traffic (Section 6, first open problem).

"Insisting upon an idle network, especially in a general-purpose and
multi-programmed system, is at best a stop-gap measure." Section 7 adds:
"we have some evidence that the algorithm can oftentimes correctly map the
network even in the face of heavy application cross-traffic." This module
quantifies that claim:

- :func:`build_crosstraffic_service` stacks an
  :class:`~repro.simulator.stack.InterferenceLayer` over the quiescent
  core: the fabric is pre-filled with Poisson host-pair worms
  (:class:`~repro.simulator.traffic.CrossTraffic`) and a probe whose worm
  collides with traffic is destroyed by the forward reset — the mapper
  sees a timeout. Deductions stay *sound* (traffic produces missing
  answers, never wrong ones), so the failure mode is an incomplete map,
  not a wrong one — matching why the paper's algorithm "oftentimes" still
  maps correctly. Mapper worms do not reserve channels against each other
  (the mapper is sequential), only against the traffic.
- a :class:`~repro.simulator.stack.RetryLayer` adds bounded retry (each
  attempt is counted and charged), the obvious mitigation.
- :func:`crosstraffic_study` sweeps traffic intensity and reports map
  completeness vs. cost, with and without retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mapper import MappingError
from repro.core.mapper_protocol import create_mapper
from repro.simulator.collision import CircuitModel, CollisionModel
from repro.simulator.occupancy import ChannelOccupancy
from repro.simulator.stack import (
    InterferenceLayer,
    RetryLayer,
    build_service_stack,
)
from repro.simulator.timing import MYRINET_TIMING, TimingModel
from repro.simulator.traffic import CrossTraffic
from repro.topology.analysis import core_network
from repro.topology.isomorphism import match_networks
from repro.topology.model import Network

__all__ = [
    "TrafficPoint",
    "build_crosstraffic_service",
    "crosstraffic_study",
]


def build_crosstraffic_service(
    net: Network,
    mapper: str,
    *,
    rate_msgs_per_ms: float,
    message_bytes: int = 4096,
    collision: CollisionModel | None = None,
    timing: TimingModel = MYRINET_TIMING,
    traffic_seed: int = 0,
    retries: int = 0,
    **kwargs,
):
    """Probe service with background worms contending for channels.

    Composes the quiescent core with an interference gate fed by a
    Poisson cross-traffic generator (and, with ``retries`` > 0, a retry
    layer). Blocked placements are not recorded against the occupancy —
    a destroyed probe worm leaves nothing behind in the fabric.
    """
    occupancy = ChannelOccupancy(timing)
    traffic = CrossTraffic(
        net,
        occupancy,
        timing,
        rate_msgs_per_ms=rate_msgs_per_ms,
        message_bytes=message_bytes,
        seed=traffic_seed,
        exclude_hosts=frozenset({mapper}),
    )
    layers = [InterferenceLayer(occupancy, traffic=traffic, record_blocked=False)]
    if retries:
        layers.append(RetryLayer(retries))
    return build_service_stack(
        net,
        mapper,
        layers=layers,
        collision=collision or CircuitModel(),
        timing=timing,
        **kwargs,
    )


@dataclass(slots=True)
class TrafficPoint:
    """One sweep point of the cross-traffic study."""

    rate_msgs_per_ms: float
    retries: int
    correct: bool
    hosts_found: int
    hosts_total: int
    switches_found: int
    switches_total: int
    wires_found: int
    wires_total: int
    probes: int
    probes_lost: int
    elapsed_ms: float
    error: str = ""

    @property
    def completeness(self) -> float:
        denom = self.hosts_total + self.switches_total + self.wires_total
        found = self.hosts_found + self.switches_found + self.wires_found
        return found / denom if denom else 1.0


def crosstraffic_study(
    net: Network,
    mapper_host: str,
    *,
    search_depth: int,
    rates: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 5.0, 10.0),
    retries: tuple[int, ...] = (0, 2),
    seed: int = 0,
) -> list[TrafficPoint]:
    """Sweep traffic intensity x retry budget; measure map quality/cost."""
    core = core_network(net)
    points: list[TrafficPoint] = []
    for rate in rates:
        for n_retries in retries:
            svc = build_crosstraffic_service(
                net,
                mapper_host,
                rate_msgs_per_ms=rate,
                traffic_seed=seed,
                retries=n_retries,
            )
            interference = svc.find_layer(InterferenceLayer)
            error = ""
            try:
                result = create_mapper(
                    "berkeley", svc, search_depth=search_depth, host_first=False
                ).map()
                produced = result.network
                correct = bool(match_networks(produced, core))
            except MappingError as exc:  # pragma: no cover - defensive
                produced = None
                correct = False
                error = str(exc)
            points.append(
                TrafficPoint(
                    rate_msgs_per_ms=rate,
                    retries=n_retries,
                    correct=correct,
                    hosts_found=produced.n_hosts if produced else 0,
                    hosts_total=core.n_hosts,
                    switches_found=produced.n_switches if produced else 0,
                    switches_total=core.n_switches,
                    wires_found=produced.n_wires if produced else 0,
                    wires_total=core.n_wires,
                    probes=svc.stats.total_probes,
                    probes_lost=interference.lost,
                    elapsed_ms=svc.stats.elapsed_ms,
                    error=error,
                )
            )
    return points
