"""CSV export tests."""

import csv
from dataclasses import dataclass

import pytest

from repro.experiments.export import export_csv


@dataclass(frozen=True)
class _Row:
    name: str
    value: int
    ratio: float


class TestExportCsv:
    def test_dataclass_rows(self, tmp_path):
        path = export_csv(
            [_Row("a", 1, 0.5), _Row("b", 2, 1.5)], tmp_path / "out.csv"
        )
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0] == {"name": "a", "value": "1", "ratio": "0.5"}
        assert len(rows) == 2

    def test_dict_rows(self, tmp_path):
        path = export_csv(
            [{"x": 1, "y": 2}, {"x": 3, "y": 4}], tmp_path / "d.csv"
        )
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows[1]["y"] == "4"

    def test_empty_rows(self, tmp_path):
        path = export_csv([], tmp_path / "empty.csv")
        assert path.read_text() == ""

    def test_rejects_other_types(self, tmp_path):
        with pytest.raises(TypeError):
            export_csv([(1, 2)], tmp_path / "bad.csv")

    def test_nested_dirs_created(self, tmp_path):
        path = export_csv([{"a": 1}], tmp_path / "deep" / "dir" / "f.csv")
        assert path.exists()

    def test_growth_samples_exportable(self, mapped_c, tmp_path):
        path = export_csv(mapped_c.growth, tmp_path / "growth.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(mapped_c.growth)
        assert set(rows[0]) == {
            "exploration",
            "n_nodes",
            "n_edges",
            "n_frontier",
        }
