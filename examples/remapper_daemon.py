#!/usr/bin/env python3
"""A day in the life of the remapping daemon.

The abstract: "the system periodically discovers the network topology and
uses it to compute and to distribute a set of mutually deadlock-free routes
to all network interfaces." This example drives that loop over an
operations timeline on subcluster C and shows what each cycle costs:

- steady-state cycles detect "no change" and ship zero route bytes;
- a change triggers recompute + *incremental* distribution (only per-host
  deltas travel, not full tables).

Run:  python examples/remapper_daemon.py
"""

from repro import RemapperDaemon, build_subcluster


def show(cycle, label: str) -> None:
    dist = cycle.distribution
    print(
        f"cycle {cycle.index} [{label}]\n"
        f"  change: {cycle.diff.summary()}\n"
        f"  routes recomputed: {cycle.routes_recomputed}"
        + (f" ({cycle.n_routes} routes, deadlock-free={cycle.deadlock_free})"
           if cycle.routes_recomputed else "")
        + (
            f"\n  distribution: {dist.bytes_sent} bytes to "
            f"{len(dist.delivered)} interfaces"
            if dist is not None
            else "\n  distribution: skipped (nothing changed)"
        )
        + f"\n  cycle cost: {cycle.elapsed_ms:.0f} ms simulated\n"
    )


def main() -> None:
    net = build_subcluster("C")
    daemon = RemapperDaemon(net, "C-svc")

    show(daemon.run_cycle(), "boot: first full map")
    show(daemon.run_cycle(), "steady state")

    # 09:30 — a new workstation is racked.
    net.add_host("C-n35")
    net.connect("C-n35", 0, "C-leaf-3", net.free_ports("C-leaf-3")[0])
    show(daemon.run_cycle(), "host C-n35 added")

    # 11:00 — nothing happened.
    show(daemon.run_cycle(), "steady state")

    # 14:45 — a cable is pulled for maintenance (redundant path exists).
    victim = next(
        w
        for w in net.wires_of("C-l2-2")
        if net.is_switch(w.other_end(w.a if w.a.node == "C-l2-2" else w.b).node)
    )
    net.disconnect(victim)
    show(daemon.run_cycle(), "cable pulled")

    # 16:20 — the cable comes back.
    net.connect(victim.a.node, victim.a.port, victim.b.node, victim.b.port)
    show(daemon.run_cycle(), "cable restored")

    total = sum(c.elapsed_ms for c in daemon.history)
    pushed = sum(
        c.distribution.bytes_sent
        for c in daemon.history
        if c.distribution is not None
    )
    print(
        f"day total: {len(daemon.history)} cycles, {total:.0f} ms simulated, "
        f"{pushed} route bytes pushed (incremental distribution)"
    )


if __name__ == "__main__":
    main()
