"""Section 5.5 — UP*/DOWN* route computation from generated maps."""

from repro.experiments import routing_study


def test_routing_pipeline_all_systems(once, benchmark):
    rows = once(routing_study.run)
    for row in rows:
        assert row.deadlock_free, row.system
        assert row.routes == row.host_pairs, row.system
        assert row.routes_valid_on_actual == row.routes, row.system
        assert row.distribution_ok, row.system
    benchmark.extra_info["routes"] = {r.system: r.routes for r in rows}
    benchmark.extra_info["max_hops"] = {
        r.system: r.max_route_hops for r in rows
    }
    benchmark.extra_info["relabeled_dominant"] = {
        r.system: r.relabeled_switches for r in rows
    }
