"""Unit tests for the probe-service middleware stack.

Each layer is exercised in isolation against a real quiescent core (the
layers are thin; mocking the engine would test nothing), plus the
factory, the describe chain and the hook-ordering contract.
"""

import pytest

from repro.simulator.probes import ProbeKind, ProbeRecord
from repro.simulator.quiescent import QuiescentProbeService
from repro.simulator.stack import (
    CapLayer,
    CountingLayer,
    ProbeBudgetExceeded,
    ProbeLayer,
    RetryLayer,
    StatsLayer,
    TraceBusLayer,
    build_service_stack,
    describe_stack,
)


class TestCountingLayer:
    def test_fires_each_trigger_before_its_threshold_probe(self, tiny_net):
        fired: list[str] = []
        layer = CountingLayer(
            [
                (3, lambda: fired.append("third")),
                (1, lambda: fired.append("first")),
            ]
        )
        svc = build_service_stack(tiny_net, "h0", layers=(layer,))
        svc.probe_switch((1,))  # probe 0: nothing
        assert fired == []
        svc.probe_switch((1,))  # probe 1: threshold 1 fires first
        assert fired == ["first"]
        svc.probe_switch((1,))  # probe 2: nothing
        svc.probe_switch((1,))  # probe 3: threshold 3 fires
        assert fired == ["first", "third"] and layer.pending == 0

    def test_threshold_zero_fires_before_the_first_probe(self, tiny_net):
        fired = []
        layer = CountingLayer([(0, lambda: fired.append("immediate"))])
        svc = build_service_stack(tiny_net, "h0", layers=(layer,))
        assert fired == []  # construction alone does not fire
        svc.probe_switch((1,))
        assert fired == ["immediate"]

    def test_equal_thresholds_fire_in_given_order(self, tiny_net):
        fired = []
        layer = CountingLayer(
            [(2, lambda: fired.append("a")), (2, lambda: fired.append("b"))]
        )
        svc = build_service_stack(tiny_net, "h0", layers=(layer,))
        for _ in range(3):
            svc.probe_switch((1,))
        assert fired == ["a", "b"]

    def test_counts_every_probe_kind(self, tiny_net):
        layer = CountingLayer()
        svc = build_service_stack(tiny_net, "h0", layers=(layer,))
        svc.probe_host((3,))
        svc.probe_switch((1,))
        svc.probe_loopback((1, -1))
        assert layer.sent == 3

    def test_pending_counts_unfired_triggers(self):
        layer = CountingLayer([(5, None), (9, None)])
        assert layer.pending == 2

    def test_retry_attempts_count_as_probes(self, tiny_net):
        """A retry is a fresh send: counting triggers see every attempt."""
        fired = []
        counting = CountingLayer([(2, lambda: fired.append("hit"))])
        svc = build_service_stack(
            tiny_net, "h0", layers=(counting, RetryLayer(2))
        )
        svc.probe_host((2,))  # structural miss: 3 attempts = 3 probes
        assert counting.sent == 3
        assert fired == ["hit"]


class TestCapLayer:
    def test_budget_trips_before_the_cap_probe(self, tiny_net):
        svc = build_service_stack(tiny_net, "h0", layers=(CapLayer(2),))
        svc.probe_switch((1,))
        svc.probe_switch((1,))
        with pytest.raises(ProbeBudgetExceeded) as err:
            svc.probe_switch((1,))
        assert err.value.cap == 2
        assert svc.stats.total_probes == 2  # the third never hit the wire

    def test_zero_cap_rejects_every_probe(self, tiny_net):
        svc = build_service_stack(tiny_net, "h0", layers=(CapLayer(0),))
        with pytest.raises(ProbeBudgetExceeded):
            svc.probe_switch((1,))
        assert svc.stats.total_probes == 0

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            CapLayer(-1)


class TestStatsLayer:
    def test_default_drops_trace_but_keeps_counters(self, tiny_net):
        svc = build_service_stack(tiny_net, "h0", layers=(StatsLayer(),))
        svc.probe_host((3,))
        assert svc.stats.trace is None
        assert svc.stats.total_probes == 1
        assert svc.stats.elapsed_us > 0

    def test_keep_trace_retains_records(self, tiny_net):
        svc = build_service_stack(
            tiny_net, "h0", layers=(StatsLayer(keep_trace=True),)
        )
        svc.probe_host((3,))
        assert svc.stats.trace is not None and len(svc.stats.trace) == 1

    def test_engine_keep_trace_flag_still_works(self, tiny_net):
        svc = build_service_stack(tiny_net, "h0", keep_trace=True)
        svc.probe_host((3,))
        assert svc.stats.trace is not None and len(svc.stats.trace) == 1

    def test_two_stats_layers_rejected(self, tiny_net):
        with pytest.raises(ValueError, match="StatsLayer"):
            build_service_stack(
                tiny_net, "h0", layers=(StatsLayer(), StatsLayer())
            )


class TestTraceBusLayer:
    def test_publishes_every_accounted_record(self, tiny_net):
        seen: list[ProbeRecord] = []
        svc = build_service_stack(
            tiny_net, "h0", layers=(TraceBusLayer((seen.append,)),)
        )
        assert svc.probe_host((3,)) == "h1"
        assert svc.probe_host((2,)) is None
        kinds_hits = [(r.kind, r.hit) for r in seen]
        assert kinds_hits == [(ProbeKind.HOST, True), (ProbeKind.HOST, False)]
        assert seen[0].response == "h1"

    def test_subscribers_run_in_subscription_order(self, tiny_net):
        order = []
        bus = TraceBusLayer((lambda r: order.append("a"),))
        bus.subscribe(lambda r: order.append("b"))
        svc = build_service_stack(tiny_net, "h0", layers=(bus,))
        svc.probe_switch((1,))
        assert order == ["a", "b"]

    def test_bus_matches_kept_trace(self, tiny_net):
        seen = []
        svc = build_service_stack(
            tiny_net,
            "h0",
            layers=(StatsLayer(keep_trace=True), TraceBusLayer((seen.append,))),
        )
        svc.probe_host((3,))
        svc.probe_switch((1,))
        assert seen == list(svc.stats.trace)


class TestHookContract:
    def test_gates_after_a_veto_are_skipped(self, tiny_net):
        calls = []

        class Veto(ProbeLayer):
            def gate(self, ctx):
                calls.append("veto")
                ctx.hit = False

        class Later(ProbeLayer):
            def gate(self, ctx):
                calls.append("later")

        svc = build_service_stack(tiny_net, "h0", layers=(Veto(), Later()))
        assert svc.probe_host((3,)) is None  # structurally a hit, vetoed
        assert calls == ["veto"]
        assert svc.stats.total_probes == 1 and svc.stats.total_hits == 0

    def test_gate_only_runs_on_hits(self, tiny_net):
        calls = []

        class Gate(ProbeLayer):
            def gate(self, ctx):
                calls.append(ctx.turns)

        svc = build_service_stack(tiny_net, "h0", layers=(Gate(),))
        svc.probe_host((2,))  # structural miss
        assert calls == []

    def test_vetoed_hit_costs_a_timeout(self, tiny_net):
        class Veto(ProbeLayer):
            def gate(self, ctx):
                ctx.hit = False

        vetoed = build_service_stack(tiny_net, "h0", layers=(Veto(),))
        vetoed.probe_host((3,))
        missed = build_service_stack(tiny_net, "h0")
        missed.probe_host((2,))
        assert vetoed.stats.elapsed_us == missed.stats.elapsed_us

    def test_on_attach_sees_the_service(self, tiny_net):
        class Attach(ProbeLayer):
            def on_attach(self, service):
                self.service = service

        layer = Attach()
        svc = build_service_stack(tiny_net, "h0", layers=(layer,))
        assert layer.service is svc


class TestFactoryAndDescribe:
    def test_default_stack_is_the_plain_quiescent_service(self, tiny_net):
        svc = build_service_stack(tiny_net, "h0")
        assert type(svc) is QuiescentProbeService
        assert svc.stack_layers == ()
        assert svc.probe_host((3,)) == "h1"

    def test_service_cls_swaps_the_core(self, tiny_net):
        from repro.baselines.selfid import SelfIdProbeService

        svc = build_service_stack(
            tiny_net, "h0", service_cls=SelfIdProbeService
        )
        assert isinstance(svc, SelfIdProbeService)
        assert svc.probe_switch_id(()) == "s0"

    def test_find_layer_locates_layers_and_stats(self, tiny_net):
        retry = RetryLayer(1)
        svc = build_service_stack(tiny_net, "h0", layers=(retry,))
        assert svc.find_layer(RetryLayer) is retry
        assert svc.find_layer(StatsLayer) is svc.stats_layer
        assert svc.find_layer(CapLayer) is None

    def test_describe_stack_renders_the_chain(self, tiny_net):
        svc = build_service_stack(
            tiny_net,
            "h0",
            layers=(CapLayer(9), RetryLayer(2), TraceBusLayer()),
        )
        text = describe_stack(svc)
        assert text.splitlines() == [
            "core: QuiescentProbeService(mapper=h0)",
            "stats: StatsLayer(keep_trace=False)",
            "layer 1: CapLayer(cap=9)",
            "layer 2: RetryLayer(retries=2)",
            "layer 3: TraceBusLayer(subscribers=0)",
        ]

    def test_describe_stack_layerless(self, tiny_net):
        assert "layers: (none)" in describe_stack(
            build_service_stack(tiny_net, "h0")
        )
