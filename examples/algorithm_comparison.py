#!/usr/bin/env python3
"""Three mapping algorithms, one network: lazy vs eager vs hardware-assisted.

Section 4.2: "The Myricom Algorithm aggressively looks for replicates as it
explores the network, whereas the Berkeley Algorithm discovers replicates
in a lazy fashion. ... The algorithms trade off sending messages and memory
usage." Section 6 adds the hypothetical self-identifying switch.

This example runs all three on the same topologies and prints the trade:

- Berkeley (lazy, deductive): moderate probes, larger model graph;
- Myricom (eager, comparison probes): O(N^2) messages, small memory;
- Self-id (hardware support): the probe-count lower bound.

Run:  python examples/algorithm_comparison.py
"""

from repro import (
    build_service_stack,
    build_subcluster,
    core_network,
    create_mapper,
    match_networks,
    recommended_search_depth,
)
from repro.baselines.selfid import SelfIdProbeService
from repro.topology.generators import build_hypercube, build_ring


def compare(name: str, net, mapper_host: str) -> None:
    depth = recommended_search_depth(net, mapper_host)
    core = core_network(net)
    rows = []

    svc = build_service_stack(net, mapper_host)
    berkeley = create_mapper(
        "berkeley", svc, search_depth=depth, host_first=False
    ).map()
    rows.append(
        (
            "Berkeley (lazy)",
            berkeley.stats.total_probes,
            berkeley.elapsed_ms,
            berkeley.peak_model_nodes,
            bool(match_networks(berkeley.network, core)),
        )
    )

    svc = build_service_stack(net, mapper_host)
    myricom = create_mapper("myricom", svc, search_depth=depth).run()
    rows.append(
        (
            "Myricom (eager)",
            myricom.breakdown.total,
            myricom.elapsed_ms,
            myricom.switches_explored,  # its whole memory footprint
            bool(match_networks(myricom.network, core)),
        )
    )

    svc = build_service_stack(net, mapper_host, service_cls=SelfIdProbeService)
    selfid = create_mapper("selfid", svc, search_depth=depth).run()
    rows.append(
        (
            "Self-identifying",
            selfid.stats.total_probes,
            selfid.elapsed_ms,
            selfid.switches_explored,
            bool(match_networks(selfid.network, core)),
        )
    )

    print(f"\n=== {name}: {net.n_hosts} hosts, {net.n_switches} switches, "
          f"{net.n_wires} links ===")
    print(f"{'algorithm':<18} {'probes':>7} {'time ms':>8} "
          f"{'model size':>10} {'correct':>8}")
    for label, probes, ms, model, ok in rows:
        print(f"{label:<18} {probes:>7} {ms:>8.0f} {model:>10} "
              f"{'yes' if ok else 'NO':>8}")


def main() -> None:
    compare("NOW subcluster C", build_subcluster("C"), "C-svc")
    ring = build_ring(6, hosts_per_switch=1)
    compare("6-switch ring", ring, sorted(ring.hosts)[0])
    cube = build_hypercube(3, hosts_per_switch=1)
    compare("3-cube", cube, sorted(cube.hosts)[0])
    print(
        "\nThe eager algorithm pays its comparison probes on every "
        "frontier pop; the lazy one pays memory for its model graph; "
        "hardware identity support beats both (Section 6)."
    )


if __name__ == "__main__":
    main()
