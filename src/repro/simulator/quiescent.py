"""The quiescent-network probe service: the setting of the proof.

"Recall the assumption that the network is quiescent during mapping and thus
worms can only deadlock on themselves" (Section 2.3.1). Under quiescence a
probe's fate is a pure function of the topology, the collision model and the
fault model, so the service evaluates probes analytically and charges the
timing model for each — no event queue needed.

Host-probe semantics beyond path evaluation:

- the terminal host must be running a mapper daemon (active or passive) to
  reply — hosts without one silently eat the probe (this is the Figure 9
  mechanism: absent responders turn would-be hits into expensive timeouts);
- the reply retraces the probe path in reverse; under quiescence it cannot
  collide with anything (the probe worm is gone by then).

Non-quiescent concerns — election silence, shared-fabric contention, chaos
event injection, cross-traffic, probe budgets — are *not* subclassed or
wrapped around this service. They are middleware layers from
:mod:`repro.simulator.stack` hooking into the single probe transaction
(:meth:`QuiescentProbeService._transact`); compose them with
:func:`~repro.simulator.stack.build_service_stack`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from repro.simulator.collision import CircuitModel, CollisionModel
from repro.simulator.faults import FaultModel
from repro.simulator.path_eval import (
    EvalCacheStats,
    IncrementalPathEvaluator,
    PathResult,
    PathStatus,
    ProbeInfo,
    evaluate_route,
    route_touches,
)
from repro.simulator.probes import ProbeKind, ProbeRecord, ProbeStats
from repro.simulator.stack import ProbeContext, ProbeLayer, StatsLayer
from repro.simulator.timing import MYRINET_TIMING, TimingModel
from repro.simulator.turns import Turns, switch_probe_turns, validate_turns
from repro.topology.delta import Endpoint
from repro.topology.model import Network

__all__ = ["QuiescentProbeService"]


@dataclass
class QuiescentProbeService:
    """Evaluate probes against a quiescent network.

    Parameters
    ----------
    net:
        The actual network ``N`` (never exposed to the mapper).
    mapper:
        The host injecting probes (``h0``).
    collision:
        Self-collision model; the proof's two cases are
        :class:`~repro.simulator.collision.CircuitModel` and
        :class:`~repro.simulator.collision.CutThroughModel`.
    timing:
        Cost model; probe costs accumulate in ``stats.elapsed_us``.
    responders:
        Hosts that answer host-probes. ``None`` means every host.
    faults:
        Optional loss/corruption/dead-wire injection.
    layers:
        Middleware layers (:class:`~repro.simulator.stack.ProbeLayer`)
        hooked into every probe transaction, in order. A
        :class:`~repro.simulator.stack.StatsLayer` among them takes over
        stats ownership (and its trace policy wins over ``keep_trace``);
        otherwise one is created from ``keep_trace``.
    rng:
        Share a jitter RNG with the caller (the election run interleaves
        its own draws with probe jitter on one stream). ``None`` seeds a
        private ``random.Random(seed)``.
    """

    net: Network
    mapper: str
    collision: CollisionModel = field(default_factory=CircuitModel)
    timing: TimingModel = MYRINET_TIMING
    responders: frozenset[str] | None = None
    faults: FaultModel = field(default_factory=FaultModel)
    keep_trace: bool = False
    #: Multiplicative software-time jitter: each probe's cost is scaled by a
    #: uniform factor in [1 - jitter, 1 + jitter]. Models OS scheduling and
    #: SBUS contention noise — the source of the paper's min/avg/max spread
    #: in Figure 7. Zero disables it (fully deterministic timing).
    jitter: float = 0.0
    seed: int = 0
    #: Escape hatch: set False to re-walk every probe via the pure
    #: :func:`evaluate_route` (used by the equivalence tests and the
    #: cache-off benchmark arm).
    use_cache: bool = True
    layers: tuple = ()
    rng: random.Random | None = None

    def __post_init__(self) -> None:
        if not self.net.is_host(self.mapper):
            raise ValueError(f"mapper {self.mapper} is not a host")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        stats_layer: StatsLayer | None = None
        rest: list[ProbeLayer] = []
        for layer in self.layers:
            if isinstance(layer, StatsLayer):
                if stats_layer is not None:
                    raise ValueError("at most one StatsLayer per stack")
                stats_layer = layer
            else:
                rest.append(layer)
        if stats_layer is None:
            stats_layer = StatsLayer(keep_trace=self.keep_trace)
        self._stats_layer = stats_layer
        self._stats = stats_layer.stats
        self._layers: tuple[ProbeLayer, ...] = tuple(rest)
        # Turn-alphabet radius: Myrinet encodes {-7..+7}; wider fabrics
        # need wider routing flits, so derive the limit from the hardware.
        self._turn_limit = max(
            (self.net.radix(s) - 1 for s in self.net.switches), default=7
        )
        self._rng = self.rng if self.rng is not None else random.Random(self.seed)
        self._evaluator = (
            IncrementalPathEvaluator(self.net, faults=self.faults)
            if self.use_cache
            else None
        )
        # One reusable transaction context per service. ``_transact`` is
        # not re-entrant: no layer hook may probe through its own service
        # (they mutate clocks/topology or observe records instead), and
        # callers consume the context before the next probe starts.
        self._ctx = ProbeContext(ProbeKind.HOST, (), self)
        self._last_validated: Turns | None = None
        stats_layer.on_attach(self)
        for layer in self._layers:
            layer.on_attach(self)

    def _jittered(self, cost: float) -> float:
        if not self.jitter:
            return cost
        return cost * self._rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)

    # -- the probe transaction -------------------------------------------
    def _transact(
        self,
        kind: ProbeKind,
        turns: Turns,
        evaluate,
        *,
        round_trip: bool,
        check_responder: bool = False,
    ) -> ProbeContext:
        """Run one probe through the full middleware pipeline.

        One attempt = before hooks, path evaluation, hit gates, the
        responder check, cost + accounting, after hooks. A layer may
        demand a retry after a miss; each retry is a complete fresh
        attempt (a re-sent probe), not a re-examination.
        """
        layers = self._layers
        ctx = self._ctx
        ctx.kind = kind
        ctx.turns = turns
        ctx.attempt = 0
        ctx.hit = False
        if layers:
            # Layer hooks may inspect any context field, so scrub the
            # leftovers from the previous transaction. The layerless fast
            # path skips this: evaluate() always writes ``info`` before
            # the engine reads it, and the hit-only fields are only read
            # when this transaction's evaluate set them.
            ctx.info = None
            ctx.responder = None
            ctx.response = None
            ctx.record = None
            ctx.payload = None
        while True:
            if layers:
                for layer in layers:
                    layer.before(ctx)
            evaluate(ctx)
            if layers and ctx.hit:
                for layer in layers:
                    layer.gate(ctx)
                    if not ctx.hit:
                        break
            if check_responder and ctx.hit and not self._responds(ctx.responder):
                ctx.hit = False
            hit = ctx.hit
            info = ctx.info
            cost = self._jittered(
                self.timing.probe_response_us(
                    info.hops, info.hops if round_trip else 0
                )
                if hit
                else self.timing.probe_timeout_us()
            )
            record = ProbeRecord(
                kind, turns, hit, cost, ctx.response if hit else None
            )
            self._stats.record(record)
            ctx.record = record
            if layers:
                for layer in layers:
                    layer.after(ctx)
                if not hit and any(
                    layer.retry_after_miss(ctx) for layer in layers
                ):
                    ctx.attempt += 1
                    ctx.info = None
                    ctx.hit = False
                    ctx.responder = None
                    ctx.response = None
                    ctx.record = None
                    ctx.payload = None
                    continue
            return ctx

    # -- evaluation callables (one per probe kind) -----------------------
    def _eval_host(self, ctx: ProbeContext) -> None:
        info = self._probe_info(ctx.turns)
        ctx.info = info
        if info.ok and info.blocked is None:
            # Inactive faults kill nothing and draw nothing, so skipping the
            # call is byte-identical (and keeps the traversal tuple untouched).
            if not self.faults.active or not self.faults.kills_traversals(
                info.traversals
            ):
                target = info.delivered_to
                assert target is not None
                ctx.hit = True
                ctx.responder = target
                ctx.response = target

    def _eval_switch(self, ctx: ProbeContext) -> None:
        info = self._loopback_info(ctx.turns)
        ctx.info = info
        if info.ok:
            # By construction the loopback terminates back at the mapper.
            assert info.delivered_to == self.mapper
            if info.blocked is None and (
                not self.faults.active
                or not self.faults.kills_traversals(info.traversals)
            ):
                ctx.hit = True
                ctx.response = "switch"

    def _eval_loopback(self, ctx: ProbeContext) -> None:
        info = self._probe_info(ctx.turns)
        ctx.info = info
        if (
            info.ok
            and info.delivered_to == self.mapper
            and info.blocked is None
            and (
                not self.faults.active
                or not self.faults.kills_traversals(info.traversals)
            )
        ):
            ctx.hit = True
            ctx.response = "loopback"

    # -- ProbeService ----------------------------------------------------
    @property
    def mapper_host(self) -> str:
        return self.mapper

    @property
    def stats(self) -> ProbeStats:
        return self._stats

    @property
    def stack_layers(self) -> tuple[ProbeLayer, ...]:
        """The middleware layers, in hook order (stats excluded)."""
        return self._layers

    @property
    def stats_layer(self) -> StatsLayer:
        return self._stats_layer

    def find_layer(self, cls: type):
        """First attached layer that is an instance of ``cls``, or None."""
        if isinstance(self._stats_layer, cls):
            return self._stats_layer
        for layer in self._layers:
            if isinstance(layer, cls):
                return layer
        return None

    def probe_host(self, turns: Turns) -> str | None:
        turns = self._validated(turns)
        ctx = self._transact(
            ProbeKind.HOST,
            turns,
            self._eval_host,
            round_trip=True,
            check_responder=True,
        )
        return ctx.responder if ctx.hit else None

    def probe_switch(self, turns: Turns) -> bool:
        turns = self._validated(turns)
        ctx = self._transact(
            ProbeKind.SWITCH, turns, self._eval_switch, round_trip=False
        )
        return ctx.hit

    def _validated(self, turns: Turns) -> Turns:
        """Validate a probe string, memoizing by object identity.

        The two halves of a probe pair pass the *same* tuple object; a probe
        string validated once is validated forever (validation depends only
        on its contents and the fixed turn limit), so the identity check is
        sound and skips re-walking the string on the second half.
        """
        if turns is self._last_validated:
            return turns
        out = validate_turns(turns, limit=self._turn_limit)
        self._last_validated = out if out is turns else None
        return out

    def probe_loopback(self, turns: Turns) -> bool:
        """Send an arbitrary worm (zeros allowed); True iff it returns here.

        The Myricom Algorithm's comparison probes ``T1..Tn X -Sm..-S1``
        (Section 4.1) are such worms: they are neither of the two canonical
        probe kinds, but the mapper only learns whether the message came
        back. Accounted as a switch-kind probe in the generic stats; the
        Myricom mapper keeps its own per-category counters on top.
        """
        seq = validate_turns(turns, allow_zero=True, limit=self._turn_limit)
        ctx = self._transact(
            ProbeKind.SWITCH, seq, self._eval_loopback, round_trip=False
        )
        return ctx.hit

    # -- cached evaluation -------------------------------------------------
    def _probe_info(self, turns: Turns) -> ProbeInfo:
        """Walk ``turns`` from the mapper, with the collision verdict.

        The cache path shares traversal tuples with the trie; the escape
        hatch recomputes everything through the pure function. Both arms
        draw from the fault RNG at identical points, so the two modes are
        byte-equivalent (the property tests assert this).
        """
        if self._evaluator is not None:
            return self._evaluator.probe_info(self.mapper, turns, self.collision)
        path = evaluate_route(self.net, self.mapper, turns)  # sanlint: disable=SAN009
        blocked = (
            self.collision.blocked_at(path.traversals)
            if path.status is PathStatus.DELIVERED
            else None
        )
        return ProbeInfo(
            path.status, path.hops, path.delivered_to, blocked, tuple(path.traversals)
        )

    def _loopback_info(self, turns: Turns) -> ProbeInfo:
        """Switch-probe loopback of ``turns`` without walking the retrace."""
        if self._evaluator is not None:
            return self._evaluator.loopback_info(self.mapper, turns, self.collision)
        return self._probe_info(switch_probe_turns(turns, limit=self._turn_limit))

    def _path(self, turns: Turns) -> PathResult:
        """Full :class:`PathResult` (node list included) for subclasses."""
        if self._evaluator is not None:
            return self._evaluator.evaluate(self.mapper, turns)
        return evaluate_route(self.net, self.mapper, turns)  # sanlint: disable=SAN009

    def warm_prefix(self, turns: Turns) -> None:
        """Hint from the mapper: ``turns`` is about to be extended."""
        if self._evaluator is not None:
            self._evaluator.warm(self.mapper, turns)

    def warm_siblings(self, prefix: Turns, turns: Iterable[int]) -> None:
        """Hint from the mapper: each ``prefix + (t,)`` is about to be probed.

        One trie descent primes hint nodes for the whole sibling group
        (see :meth:`IncrementalPathEvaluator.warm_siblings`); the probes
        themselves still go through :meth:`_transact` one at a time, so
        middleware layers, accounting and RNG draw order are byte-identical
        to the unbatched path. A no-op without the cache.
        """
        if self._evaluator is not None:
            self._evaluator.warm_siblings(self.mapper, tuple(prefix), turns)

    def route_crosses(
        self, turns: Turns, endpoints: frozenset[Endpoint] | set[Endpoint]
    ) -> bool:
        """Whether the route's footprint intersects the given wire ends.

        The link this models: the paper's environment reports a fault as a
        wire-level event, and an incremental remapper must correlate its
        recorded probe paths against that report to decide which deductions
        still stand. The correlation is *local* — it consults the cached
        walk (or re-walks the pure function), sends nothing, and charges no
        probe to the stats; see docs/INCREMENTAL.md for why this deviation
        from the probe-only discipline is sound. Turn values are not
        alphabet-checked: the caller correlates prior-map port arithmetic,
        not a sendable probe string.
        """
        seq = tuple(turns)
        if self._evaluator is not None:
            return self._evaluator.touches(self.mapper, seq, endpoints)
        return route_touches(self.net, self.mapper, seq, endpoints)

    @property
    def eval_cache_stats(self) -> EvalCacheStats | None:
        """Cache counters, or ``None`` when running with the escape hatch."""
        return self._evaluator.stats if self._evaluator is not None else None

    # -- helpers ----------------------------------------------------------
    def _responds(self, host: str) -> bool:
        if host == self.mapper:
            # The mapper's own interface always answers (it is running the
            # active mapper daemon by definition).
            return True
        return self.responders is None or host in self.responders

    def response(self, turns: Turns, *, host_first: bool = True):
        """The full probe pair of Section 2.3: returns ``R(turns)``.

        ``host_first`` controls which of the two tests is sent first; the
        second is skipped when the first already identified the node.
        Returns a host name, the string ``"switch"``, or ``None``.
        """
        if host_first:
            host = self.probe_host(turns)
            if host is not None:
                return host
            return "switch" if self.probe_switch(turns) else None
        if self.probe_switch(turns):
            return "switch"
        return self.probe_host(turns)
