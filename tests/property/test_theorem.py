"""Property-based validation of Theorem 1 over random topologies.

Theorem 1: under circuit routing, ``M / L`` is isomorphic to ``N - F``;
under cut-through routing with ``F`` empty, ``M / L`` is isomorphic to
``N``. The production mapper realizes ``M / L`` directly, so the property
reads: *map any random connected SAN and get exactly its core back, up to
per-switch port offsets.*
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.mapper import BerkeleyMapper
from repro.simulator.collision import CircuitModel, CutThroughModel, PacketModel
from repro.simulator.quiescent import QuiescentProbeService
from repro.topology.analysis import core_network, recommended_search_depth
from repro.topology.generators import random_san
from repro.topology.isomorphism import match_networks
from repro.topology.model import TopologyError


def _try_san(**params):
    """Build a random SAN, or None when the draw is infeasible (e.g. the
    requested density exceeds the port budget)."""
    try:
        return random_san(**params)
    except TopologyError:
        return None

# Sizes are kept modest: Q+D+1-depth exploration of dense random graphs is
# exponential in the worst case (the paper's own bound), and hypothesis
# runs dozens of cases.
network_params = st.fixed_dictionaries(
    {
        "n_switches": st.integers(min_value=1, max_value=6),
        "n_hosts": st.integers(min_value=2, max_value=6),
        "extra_links": st.integers(min_value=0, max_value=3),
        "parallel_link_prob": st.sampled_from([0.0, 0.5]),
        "seed": st.integers(min_value=0, max_value=10_000),
    }
)

_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _map_with(net, collision, mapper=None):
    mapper = mapper or sorted(net.hosts)[0]
    depth = recommended_search_depth(net, mapper)
    svc = QuiescentProbeService(net, mapper, collision=collision)
    return BerkeleyMapper(
        svc, search_depth=depth, host_first=False, max_explorations=4000
    ).run()


class TestTheoremCircuit:
    @given(params=network_params)
    @settings(**_SETTINGS)
    def test_map_isomorphic_to_core(self, params):
        net = _try_san(**params)
        if net is None:
            return
        result = _map_with(net, CircuitModel())
        core = core_network(net)
        report = match_networks(result.network, core)
        assert report, f"{params}: {report.reason}"

    @given(params=network_params, pendants=st.integers(min_value=1, max_value=2))
    @settings(**_SETTINGS)
    def test_f_regions_always_pruned(self, params, pendants):
        net = _try_san(**params, pendant_switches=pendants)
        if net is None:
            return
        result = _map_with(net, CircuitModel())
        core = core_network(net)
        report = match_networks(result.network, core)
        assert report, f"{params}+{pendants} pendants: {report.reason}"


class TestTheoremCutThrough:
    @given(params=network_params, slack=st.integers(min_value=1, max_value=4))
    @settings(**_SETTINGS)
    def test_cut_through_with_empty_f(self, params, slack):
        net = _try_san(**params)  # no pendants: F is usually empty
        if net is None:
            return
        from repro.topology.analysis import separated_set

        if separated_set(net):  # rare: random extra links can make bridges
            return
        result = _map_with(net, CutThroughModel(slack_hops=slack))
        report = match_networks(result.network, net)
        assert report, f"{params} slack={slack}: {report.reason}"


class TestPacketBaseline:
    @given(params=network_params)
    @settings(**_SETTINGS)
    def test_packet_routing_trivially_correct(self, params):
        """Section 1.2: 'this algorithm is trivially correct assuming
        packet routing'."""
        net = _try_san(**params)
        if net is None:
            return
        from repro.topology.analysis import separated_set

        if separated_set(net):
            # Packet probes never self-collide, so they can re-cross a
            # bridge into F and map switches beyond the core: the produced
            # map is correct but *richer* than core_network's oracle.
            return
        result = _map_with(net, PacketModel())
        report = match_networks(result.network, core_network(net))
        assert report, f"{params}: {report.reason}"


class TestSoundness:
    @given(
        params=network_params,
        responder_count=st.integers(min_value=1, max_value=3),
    )
    @settings(**_SETTINGS)
    def test_partial_information_never_fabricates(self, params, responder_count):
        """With arbitrary subsets of silent hosts the map may be incomplete
        but must embed in the truth: real host names only, no more nodes
        than reality."""
        net = _try_san(**params)
        if net is None:
            return
        hosts = sorted(net.hosts)
        responders = frozenset(hosts[:responder_count])
        mapper = hosts[0]
        depth = recommended_search_depth(net, mapper)
        svc = QuiescentProbeService(net, mapper, responders=responders)
        result = BerkeleyMapper(
            svc, search_depth=depth, host_first=False, max_explorations=2000
        ).run()
        produced = result.network
        assert set(produced.hosts) <= set(net.hosts)
        assert set(produced.hosts) <= responders | {mapper}
