"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(...)`` returning structured rows and ``main()``
printing the same table/series the paper reports, side by side with the
paper's published numbers. The benchmarks under ``benchmarks/`` wrap these
same entry points, so ``pytest benchmarks/ --benchmark-only`` regenerates
every experiment.

| module               | paper artifact                                     |
|----------------------|----------------------------------------------------|
| ``fig3_components``   | Figure 3 — subcluster component counts             |
| ``fig4_subcluster_map`` | Figure 4 — automatically generated map of C      |
| ``fig5_full_map``     | Figure 5 — the 100-node NOW map                    |
| ``fig6_probe_counts`` | Figure 6 — probe counts and hit ratios             |
| ``fig7_mapping_times``| Figure 7 — mapping times, master vs election       |
| ``fig8_model_growth`` | Figure 8 — model graph growth over explorations    |
| ``fig9_responders``   | Figure 9 — map time vs number of mapper daemons    |
| ``fig10_myricom``     | Figure 10 — Myricom Algorithm probe/time comparison|
| ``routing_study``     | Section 5.5 — UP*/DOWN* routes: count, deadlock    |
| ``ablations``         | planner / collision-model / coupon ablations       |
| ``crosstraffic_ext``  | Section 6 extension — mapping under cross-traffic  |
| ``parallel_ext``      | Section 6 extension — parallel partial-map merging |
"""

__all__ = [
    "common",
    "tables",
    "fig3_components",
    "fig4_subcluster_map",
    "fig5_full_map",
    "fig6_probe_counts",
    "fig7_mapping_times",
    "fig8_model_growth",
    "fig9_responders",
    "fig10_myricom",
    "routing_study",
    "routing_quality",
    "ablations",
    "crosstraffic_ext",
    "parallel_ext",
]
