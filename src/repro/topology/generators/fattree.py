"""Parametric (possibly incomplete) fat trees in the Berkeley NOW style.

The NOW subclusters are "fat-tree-like" (Section 5.1): leaf switches holding
hosts, one or more internal switch levels, roots on top, with each switch
uplinking to several switches of the next level. :func:`build_fat_tree`
generalizes the style so experiments can scale the topology family.
"""

from __future__ import annotations

from repro.topology.builder import NetworkBuilder
from repro.topology.model import Network, TopologyError

__all__ = ["build_fat_tree"]


def build_fat_tree(
    *,
    n_leaves: int,
    hosts_per_leaf: int,
    level_widths: tuple[int, ...] = (2,),
    uplinks: int = 2,
    radix: int = 8,
    prefix: str = "ft",
    utility_host: bool = False,
) -> Network:
    """Build a fat tree.

    ``level_widths`` gives the number of switches at each level above the
    leaves (last entry = roots). Each switch at level ``i`` uplinks to
    ``uplinks`` distinct switches of level ``i+1``, chosen round-robin, so
    the tree is "incomplete" in the same way the NOW subclusters are.

    Raises :class:`TopologyError` when the radix cannot accommodate the
    requested fan-in/fan-out.
    """
    if n_leaves < 1 or hosts_per_leaf < 1 or not level_widths:
        raise TopologyError("fat tree needs leaves, hosts and at least one level")
    if hosts_per_leaf + min(uplinks, len(level_widths) and uplinks) > radix:
        raise TopologyError(
            f"leaf needs {hosts_per_leaf} host ports + {uplinks} uplinks > radix {radix}"
        )

    b = NetworkBuilder(default_radix=radix)
    levels: list[list[str]] = [[f"{prefix}-leaf-{i}" for i in range(n_leaves)]]
    for li, width in enumerate(level_widths):
        levels.append([f"{prefix}-l{li + 1}-{i}" for i in range(width)])
    for level in levels:
        for s in level:
            b.switch(s)

    host_no = 0
    for leaf in levels[0]:
        for _ in range(hosts_per_leaf):
            b.host(f"{prefix}-n{host_no:03d}")
            b.attach(f"{prefix}-n{host_no:03d}", leaf)
            host_no += 1

    for lower, upper in zip(levels, levels[1:]):
        fan = min(uplinks, len(upper))
        for i, sw in enumerate(lower):
            for j in range(fan):
                b.link(sw, upper[(i + j) % len(upper)])

    if utility_host:
        b.host(f"{prefix}-svc", utility=True)
        b.attach(f"{prefix}-svc", levels[-1][0])

    return b.build(require_connected=True)
