"""Figure 5 — the 100-node NOW cluster network map.

"Zooming out allows us to see the entire 100 node cluster as of this
writing." Same procedure as Figure 4 on the composed C+A+B system: map it
in-band, verify isomorphism against the actual core, render.
"""

from __future__ import annotations

from repro.experiments.fig4_subcluster_map import MapExperiment, run as _run

__all__ = ["run", "main"]


def run() -> MapExperiment:
    return _run("C+A+B")


def main() -> None:
    exp = run()
    net = exp.result.network
    print(
        f"Figure 5: mapped the full NOW system: {net.n_hosts} interfaces, "
        f"{net.n_switches} switches, {net.n_wires} links "
        f"(paper: 100 nodes, 40 switches, 193 links)"
    )
    print(
        f"verification: isomorphic to actual core = {bool(exp.verification)}"
    )
    print(
        f"probes: {exp.result.stats.total_probes}, "
        f"explorations: {exp.result.explorations}, "
        f"peak model nodes: {exp.result.peak_model_nodes}, "
        f"simulated time: {exp.result.elapsed_ms:.0f} ms"
    )
    from repro.core.instrumentation import cache_summary

    print(cache_summary(exp.cache))


if __name__ == "__main__":
    main()
