"""Rule base class and registry for :mod:`repro.analysis`.

Rules are small classes registered by decorating them with
:func:`register`. Each carries

- ``rule_id`` — ``SANxxx``, the stable identifier used in reports and in
  ``# sanlint: disable=SANxxx`` suppression comments;
- ``title`` — a one-line summary for ``san-lint --list-rules``;
- ``rationale`` — why the invariant matters for the reproduction (the
  paper-level argument, kept next to the code that enforces it);
- ``hint`` — the default fix-it hint attached to every diagnostic.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Callable, ClassVar, Iterable, Iterator

from repro.analysis.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.engine import ModuleInfo
    from repro.analysis.project import Project

__all__ = [
    "ProjectRule",
    "Rule",
    "all_rule_ids",
    "get_rule",
    "iter_rules",
    "register",
]

_RULE_ID_RE = re.compile(r"^SAN\d{3}$")


class Rule:
    """Base class: one invariant, checked per module."""

    rule_id: ClassVar[str]
    title: ClassVar[str]
    rationale: ClassVar[str]
    hint: ClassVar[str]
    #: ``"module"`` rules see one file at a time; ``"project"`` rules (the
    #: sanflow pass) see every analyzed module's summary at once.
    scope: ClassVar[str] = "module"

    def check(self, module: "ModuleInfo") -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(
        self,
        module: "ModuleInfo",
        node: ast.AST,
        message: str,
        *,
        hint: str | None = None,
    ) -> Diagnostic:
        """Build a diagnostic anchored at ``node`` with this rule's hint."""
        return Diagnostic(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            hint=hint if hint is not None else self.hint,
        )


class ProjectRule(Rule):
    """A whole-program rule, checked once over all module summaries.

    Project rules never parse source themselves: they read the JSON-ready
    summaries held by a :class:`~repro.analysis.project.Project`, which is
    what makes them cacheable — a warm run rebuilds the project from cached
    summaries without touching the AST of unchanged files. Diagnostics are
    attributed back to their module by path, so ``# sanlint: disable=``
    comments work exactly as they do for module rules.
    """

    scope: ClassVar[str] = "project"

    def check(self, module: "ModuleInfo") -> Iterator[Diagnostic]:
        return iter(())  # project rules contribute nothing per module

    def check_project(self, project: "Project") -> Iterator[Diagnostic]:
        raise NotImplementedError

    def project_diag(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        *,
        hint: str | None = None,
    ) -> Diagnostic:
        return Diagnostic(
            path=path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
            hint=hint if hint is not None else self.hint,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    rule_id = getattr(cls, "rule_id", "")
    if not _RULE_ID_RE.match(rule_id):
        raise ValueError(f"rule id {rule_id!r} does not match SANxxx")
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = cls
    return cls


def all_rule_ids() -> list[str]:
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> type[Rule]:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(all_rule_ids())}"
        ) from None


def iter_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """Instantiate the selected rules (all registered ones by default)."""
    chosen = list(select) if select is not None else all_rule_ids()
    dropped = set(ignore or ())
    rules: list[Rule] = []
    for rule_id in chosen:
        if rule_id in dropped:
            continue
        rules.append(get_rule(rule_id)())
    return rules


# Used by the engine to resolve helper callbacks without importing rules
# eagerly; kept here so the registry stays the single point of coupling.
RuleFactory = Callable[[], Rule]
