"""The composable probe-service middleware stack.

The paper's clean boundary — mappers see only the response function ``R``
plus simulated time (Section 2.3) — had been re-implemented five times as
the repo grew: election silence, shared-fabric contention, chaos event
injection, cross-traffic interference and probe budgets each wrapped the
quiescent service with a bespoke class that duplicated probe accounting.
This module replaces the zoo with one engine
(:class:`~repro.simulator.quiescent.QuiescentProbeService`) and small
*layers* that hook into its single probe transaction:

``before``
    runs before path evaluation, once per attempt — counting triggers,
    clock advancement, budget enforcement.
``gate``
    runs only when the probe evaluated to a hit; a layer may veto by
    setting ``ctx.hit = False`` (occupancy conflicts, silenced rivals).
    Gates after the vetoing one are skipped.
``after``
    runs once the :class:`~repro.simulator.probes.ProbeRecord` has been
    accounted — trace publication, lockstep waits.
``retry_after_miss``
    consulted only on a miss; returning True re-runs the whole
    transaction (a retry is a full fresh attempt: ``before`` hooks fire
    again and a new record is accounted, exactly like the mapper sending
    the probe again).

Hooks run in layer order for every phase, so ordering is part of the
contract: counting/budget layers first, interference gates next,
observation layers (trace bus, lockstep) last. ``docs/ARCHITECTURE.md``
spells out the rules.

Build stacks through :func:`build_service_stack`; ad-hoc wrapper classes
outside this module are rejected by sanlint rule SAN011.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.simulator.probes import ProbeKind, ProbeRecord, ProbeStats
from repro.simulator.turns import Turns

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.quiescent import QuiescentProbeService

__all__ = [
    "CapLayer",
    "CountingLayer",
    "InterferenceLayer",
    "LockstepLayer",
    "ProbeBudgetExceeded",
    "ProbeContext",
    "ProbeLayer",
    "RetryLayer",
    "StatsLayer",
    "TraceBusLayer",
    "build_service_stack",
    "describe_stack",
]


@dataclass(slots=True)
class ProbeContext:
    """One probe transaction, threaded through every layer hook.

    ``info`` duck-types between :class:`~repro.simulator.path_eval.ProbeInfo`
    and :class:`~repro.simulator.path_eval.PathResult` — layers may rely on
    ``.hops`` and ``.traversals`` only. ``responder``/``response`` are the
    service-level return value and the name recorded in the trace; the
    evaluation callable sets both, gates may clear ``hit`` (the engine then
    records a timeout-cost miss).
    """

    kind: ProbeKind
    turns: Turns
    service: "QuiescentProbeService"
    attempt: int = 0
    info: object | None = None
    hit: bool = False
    responder: str | None = None
    response: str | None = None
    record: ProbeRecord | None = None
    #: Free slot for probe kinds whose result is richer than hit/responder
    #: (e.g. the coupon phase's ``(host, prefix)`` pair).
    payload: object = None


class ProbeLayer:
    """Base middleware layer: every hook is a no-op.

    Layers are deliberately tiny objects — one concern each — composed via
    :func:`build_service_stack`. Subclasses override only the hooks they
    need; the engine skips the hook loops entirely for layer-less stacks,
    so the quiescent fast path pays nothing.
    """

    def on_attach(self, service: "QuiescentProbeService") -> None:
        """Called once when the engine adopts the layer."""

    def before(self, ctx: ProbeContext) -> None:
        """Runs before path evaluation, once per attempt."""

    def gate(self, ctx: ProbeContext) -> None:
        """Runs on hits only; set ``ctx.hit = False`` to veto."""

    def after(self, ctx: ProbeContext) -> None:
        """Runs after the record was accounted (``ctx.record`` is set)."""

    def retry_after_miss(self, ctx: ProbeContext) -> bool:
        """Return True to re-run the transaction after a miss."""
        return False

    def describe(self) -> str:
        """One-line human description for ``san-map map --stack``."""
        return type(self).__name__


class StatsLayer(ProbeLayer):
    """Owns the :class:`ProbeStats` the engine accounts into.

    Accounting itself happens exactly once, inside the engine's
    transaction — this layer only decides the retention policy.
    ``keep_trace=False`` (the default) drops per-probe records so large
    chaos campaigns stop holding every :class:`ProbeRecord` in memory;
    counters and elapsed time are kept either way.
    """

    def __init__(self, *, keep_trace: bool = False) -> None:
        self.keep_trace = keep_trace
        self.stats = ProbeStats(trace=[] if keep_trace else None)

    def describe(self) -> str:
        return f"StatsLayer(keep_trace={self.keep_trace})"


class CountingLayer(ProbeLayer):
    """Fire payloads once the probe count crosses their thresholds.

    The primitive behind both chaos mid-map events ("after N probes,
    break a wire") and election probe budgets. ``triggers`` is an
    iterable of ``(threshold, payload)`` pairs; before the probe whose
    ordinal equals ``threshold`` (0-based: the count of probes already
    sent), :meth:`fire` is invoked with the payload. The sort is stable,
    so equal thresholds fire in the order given.
    """

    def __init__(
        self, triggers: Iterable[tuple[int, object]] = ()
    ) -> None:
        self.sent = 0
        self._pending = sorted(triggers, key=lambda t: t[0])
        self._next = 0

    @property
    def pending(self) -> int:
        """Triggers not yet fired."""
        return len(self._pending) - self._next

    def fire(self, payload: object) -> None:
        """Default action: call the payload. Subclasses override."""
        if callable(payload):
            payload()

    def before(self, ctx: ProbeContext) -> None:
        while (
            self._next < len(self._pending)
            and self._pending[self._next][0] <= self.sent
        ):
            _, payload = self._pending[self._next]
            self._next += 1
            self.fire(payload)
        self.sent += 1

    def describe(self) -> str:
        return f"CountingLayer(triggers={len(self._pending)})"


class ProbeBudgetExceeded(RuntimeError):
    """Raised by :class:`CapLayer` when its probe budget is exhausted."""

    def __init__(self, cap: int) -> None:
        super().__init__(f"probe budget of {cap} exhausted")
        self.cap = cap


class CapLayer(CountingLayer):
    """Abort the run once ``cap`` probes have been sent.

    The election's rival-schedule bound: the budget trips *before* probe
    number ``cap`` (0-based) is evaluated, so exactly ``cap`` probes ever
    reach the wire. Callers catch :class:`ProbeBudgetExceeded`.
    """

    def __init__(self, cap: int) -> None:
        if cap < 0:
            raise ValueError("cap must be non-negative")
        super().__init__(((cap, None),))
        self.cap = cap

    def fire(self, payload: object) -> None:
        raise ProbeBudgetExceeded(self.cap)

    def describe(self) -> str:
        return f"CapLayer(cap={self.cap})"


class TraceBusLayer(ProbeLayer):
    """Publish every accounted :class:`ProbeRecord` to subscribers.

    The shared observation point: instrumentation, model-growth sampling
    and chaos oracles subscribe callbacks instead of threading bespoke
    hooks through service constructors. Subscribers run in subscription
    order and must not mutate the (frozen) record.
    """

    def __init__(
        self, subscribers: Iterable[Callable[[ProbeRecord], None]] = ()
    ) -> None:
        self._subscribers: list[Callable[[ProbeRecord], None]] = list(
            subscribers
        )

    def subscribe(self, fn: Callable[[ProbeRecord], None]) -> None:
        self._subscribers.append(fn)

    def after(self, ctx: ProbeContext) -> None:
        record = ctx.record
        assert record is not None
        for fn in self._subscribers:
            fn(record)

    def describe(self) -> str:
        return f"TraceBusLayer(subscribers={len(self._subscribers)})"


class RetryLayer(ProbeLayer):
    """Re-send missed probes up to ``retries`` extra times.

    Each retry is a complete fresh transaction: earlier layers' ``before``
    hooks fire again and a new record is accounted — byte-identical to the
    mapper itself re-sending the probe, which is what the old
    ``RetryingProbeService`` wrapper did.
    """

    def __init__(self, retries: int) -> None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.retries = retries

    def retry_after_miss(self, ctx: ProbeContext) -> bool:
        return ctx.attempt < self.retries

    def describe(self) -> str:
        return f"RetryLayer(retries={self.retries})"


class InterferenceLayer(ProbeLayer):
    """Gate hits through channel occupancy (cross-traffic, shared fabric).

    A probe that evaluated clean against the quiescent network can still
    lose to interfering worms: the layer tries to place the probe's
    traversals into ``occupancy`` at the current simulated time and vetoes
    the hit when any channel is busy. ``traffic`` (optional) is a
    :class:`~repro.simulator.traffic.CrossTraffic` generator advanced to
    ``now + fill_ahead_us`` before each placement; ``clock`` overrides the
    default clock (the service's accumulated ``stats.elapsed_us``) for
    lockstep schedulers.
    """

    def __init__(
        self,
        occupancy,
        *,
        traffic=None,
        clock: Callable[[], float] | None = None,
        fill_ahead_us: float = 10_000.0,
        record_blocked: bool = True,
    ) -> None:
        self.occupancy = occupancy
        self.traffic = traffic
        self._clock = clock
        self._fill_ahead_us = fill_ahead_us
        self._record_blocked = record_blocked
        #: Hits vetoed by occupancy (the old ``probes_lost_to_traffic``).
        self.lost = 0

    def now_us(self, ctx: ProbeContext) -> float:
        if self._clock is not None:
            return self._clock()
        return ctx.service.stats.elapsed_us

    def gate(self, ctx: ProbeContext) -> None:
        now = self.now_us(ctx)
        if self.traffic is not None:
            self.traffic.fill_until(now + self._fill_ahead_us)
        placement = self.occupancy.try_place(
            ctx.info, now, record_blocked=self._record_blocked
        )
        if not placement.ok:
            self.lost += 1
            ctx.hit = False

    def describe(self) -> str:
        traffic = "on" if self.traffic is not None else "off"
        return f"InterferenceLayer(traffic={traffic}, lost={self.lost})"


class LockstepLayer(ProbeLayer):
    """Yield the probe's cost to a :class:`LockstepScheduler` actor.

    Concurrent mappers interleave by waiting out each probe's simulated
    cost on the shared clock; this layer does the wait right after the
    record is accounted, exactly where the old concurrent wrapper did.
    """

    def __init__(self, scheduler) -> None:
        self._sched = scheduler

    def after(self, ctx: ProbeContext) -> None:
        record = ctx.record
        assert record is not None
        self._sched.wait(record.cost_us)

    def describe(self) -> str:
        return "LockstepLayer()"


# ----------------------------------------------------------------------
# factory
# ----------------------------------------------------------------------


def build_service_stack(
    net,
    mapper: str,
    *,
    layers: Iterable[ProbeLayer] = (),
    service_cls: type | None = None,
    **service_kwargs,
):
    """Build a probe service as core engine + middleware layers.

    The single construction point for every probe path in the repo: the
    quiescent core (or a ``service_cls`` subclass adding probe kinds,
    e.g. the self-identifying baseline) plus the given layers in order.
    All remaining keyword arguments go to the service constructor
    (``collision=``, ``timing=``, ``faults=``, ``jitter=``, ``seed=``,
    ``rng=``, ``use_cache=``, ...).
    """
    from repro.simulator.quiescent import QuiescentProbeService

    cls = QuiescentProbeService if service_cls is None else service_cls
    return cls(net, mapper, layers=tuple(layers), **service_kwargs)


def describe_stack(service) -> str:
    """Render the composed layer chain (``san-map map --stack``)."""
    lines = [f"core: {type(service).__name__}(mapper={service.mapper_host})"]
    stats_layer = getattr(service, "stats_layer", None)
    if stats_layer is not None:
        lines.append(f"stats: {stats_layer.describe()}")
    layers = tuple(getattr(service, "stack_layers", ()))
    if not layers:
        lines.append("layers: (none)")
    for i, layer in enumerate(layers, 1):
        lines.append(f"layer {i}: {layer.describe()}")
    return "\n".join(lines)
